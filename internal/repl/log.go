package repl

import (
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// quorumAck tracks one committed leg's K-of-N acknowledgement across a
// replica group: done closes when the K-th replica acks. The need is
// mutable — a live quorum reconfiguration (Manager.SetQuorum) lowering K
// sweeps the pending acks and lowers their need, releasing waiters blocked
// behind a quorum the group can no longer fill. The acked/need pair is
// checked crosswise with sequentially consistent atomics (ack stores
// acked then reads need; lowerNeed stores need then reads acked), so at
// least one side observes a satisfied quorum — no lost wakeup — and the
// closed latch makes done close exactly once.
type quorumAck struct {
	acked  atomic.Int32
	need   atomic.Int32
	closed atomic.Bool
	done   chan struct{}
}

func newQuorumAck(k int) *quorumAck {
	q := &quorumAck{done: make(chan struct{})}
	q.need.Store(int32(k))
	if k <= 0 {
		q.close()
	}
	return q
}

// ack counts one replica's acknowledgement; the K-th closes done. A
// replica acks when it applied the leg — or when it is broken or the
// manager is closing, so a poisoned mirror only degrades commits until
// its queue drains instead of wedging every sync client behind it (the
// quorum's durability claim shrinks by one replica either way, which
// Status surfaces as Broken).
func (q *quorumAck) ack() {
	if q.acked.Add(1) >= q.need.Load() {
		q.close()
	}
}

// lowerNeed reduces the quorum this leg still waits for (a raise never
// applies retroactively — in-flight waits only ever get easier), closing
// done if the acks already collected now satisfy it.
func (q *quorumAck) lowerNeed(k int32) {
	for {
		cur := q.need.Load()
		if k >= cur {
			return
		}
		if q.need.CompareAndSwap(cur, k) {
			break
		}
	}
	if q.acked.Load() >= k {
		q.close()
	}
}

func (q *quorumAck) close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.done)
	}
}

// Entry is one committed transaction leg in a replica's ship log: the
// leg's write records in primary commit order, stamped with a per-log
// sequence number. ack is the group-wide quorum counter shared by every
// replica's copy of the leg (nil in async mode).
type Entry struct {
	LSN  int64
	Recs []cluster.WriteRec
	ack  *quorumAck
}

// shipLog is the in-memory commit log feeding one replica: an append-only
// queue of committed legs, consumed in order (and in batches) by the
// replica's single apply goroutine. Direct replicas are appended to under
// the primary's commit lock, so entry order is the primary's commit
// order; chained replicas are appended to by their parent's apply loop,
// inheriting the same order.
type shipLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []*Entry
	next    int64 // LSN of the next append
	idx     int   // index of the next entry to apply
	closed  bool
}

func newShipLog() *shipLog {
	l := &shipLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append enqueues one leg and wakes the apply loop. The caller may hold a
// commit lock, so this must stay non-blocking. An append to a closed log
// (a replica just promoted away) acks immediately: nobody will consume
// the queue, and the promoted node holds the records as primary.
func (l *shipLog) append(recs []cluster.WriteRec, ack *quorumAck) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		if ack != nil {
			ack.ack()
		}
		return
	}
	e := &Entry{LSN: l.next, Recs: recs, ack: ack}
	l.next++
	l.entries = append(l.entries, e)
	l.cond.Signal()
	l.mu.Unlock()
}

// takeBatch blocks until unapplied entries exist and returns up to max of
// them in order, or nil once the log is closed and fully drained.
// Batching is what makes a geo link viable: the apply loop pays one
// shipped message per batch, so a lagging WAN replica catches up at
// per-batch, not per-commit, round trips.
func (l *shipLog) takeBatch(max int) []*Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if n := len(l.entries) - l.idx; n > 0 {
			if n > max {
				n = max
			}
			return l.entries[l.idx : l.idx+n]
		}
		if l.closed {
			return nil
		}
		l.cond.Wait()
	}
}

// consumed marks the next n entries applied, trimming the backlog once
// the apply loop catches up.
func (l *shipLog) consumed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.idx += n
	if l.idx == len(l.entries) {
		l.entries = nil
		l.idx = 0
	}
}

// close wakes the apply loop for a final drain-and-exit.
func (l *shipLog) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}
