// Live replica-group reconfiguration: the repl-side actuators of the
// autopilot's closed loop. SetQuorum changes sync-mode K on a running
// manager — raising it under ship-drop storms (when the one fast replica
// that satisfies a small K may be the only one still receiving records),
// lowering it back once the group heals. ReattachOrphans re-homes replicas
// whose ship pipeline can no longer make progress — chained standbys whose
// parent broke or died, and poisoned mirrors on live nodes — by wiping and
// re-seeding them directly under the group's current primary.
package repl

import (
	"fmt"
	"sort"
)

// Quorum returns the live sync-quorum K.
func (m *Manager) Quorum() int { return int(m.quorumK.Load()) }

// BaseQuorum returns the configured (baseline) K the autopilot lowers back
// to after a raise.
func (m *Manager) BaseQuorum() int { return m.cfg.QuorumAcks }

// SetQuorum changes the sync-quorum K on the running manager and returns
// the previous value. It is serialized under the manager's topology lock,
// so it linearizes with concurrent failover regroups and attaches: a
// commit observes either the old or the new K, never a torn mix.
//
//   - Raising K applies to future commits only; each commit still clamps
//     to its group's size, so raising K above the live standby count
//     degrades to all-replicas instead of wedging clients.
//   - Lowering K also sweeps the in-flight commit waits and lowers their
//     need, releasing waiters blocked behind a quorum the group can no
//     longer fill (e.g. mid-ship-drop) — without ever raising an
//     individual wait's already-clamped need.
func (m *Manager) SetQuorum(k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("repl: quorum K must be >= 1, got %d", k)
	}
	m.mu.Lock()
	old := int(m.quorumK.Swap(int32(k)))
	if k < old {
		m.ackMu.Lock()
		for ack := range m.pending {
			ack.lowerNeed(int32(k))
		}
		m.ackMu.Unlock()
	}
	m.mu.Unlock()
	return old, nil
}

// GroupPrimaries lists the current primary of every replica group, sorted.
func (m *Manager) GroupPrimaries() []int {
	var out []int
	for p := range *m.groups.Load() {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// TargetReplicas is the configured per-shard redundancy (StandbysPerShard)
// — the N the autopilot heals groups back toward.
func (m *Manager) TargetReplicas() int { return m.cfg.StandbysPerShard }

// needsReseed reports whether r's ship pipeline is beyond in-place repair
// and the replica should be wiped and re-seeded directly under primary:
// a stale detach latch (a previous re-seed failed partway), a poisoned
// mirror, or a chained replica whose parent can no longer feed it.
func (m *Manager) needsReseed(g *group, r *replica, primary int) bool {
	if r.detached.Load() || r.broken.Load() {
		return true
	}
	up := int(r.upstream.Load())
	if up == primary {
		return false
	}
	// Chained: orphaned when its parent is gone from the group, broken,
	// detached, or down — records relayed through the parent stop flowing,
	// so the child lags forever no matter how healthy it is itself.
	for _, p := range *g.replicas.Load() {
		if p == r || p.node != up {
			continue
		}
		return p.broken.Load() || p.detached.Load() || m.c.NodeIsDown(p.node)
	}
	return true // parent absent entirely
}

// Orphans lists the replicas of primary's group that ReattachOrphans would
// re-seed right now: pipeline-dead replicas (see needsReseed) whose own
// node is up. A planning view with no side effects — dry-run mode uses it.
func (m *Manager) Orphans(primary int) []int {
	g := m.group(primary)
	if g == nil || g.failing.Load() {
		return nil
	}
	var out []int
	for _, r := range *g.replicas.Load() {
		if m.needsReseed(g, r, primary) && !m.c.NodeIsDown(r.node) {
			out = append(out, r.node)
		}
	}
	sort.Ints(out)
	return out
}

// ReattachOrphans re-homes every orphaned replica of primary's group as a
// fresh direct standby of the current primary: quiesce the old apply
// pipeline, wipe and re-seed the node under the route barrier, and start a
// new replica in its place. Returns the node ids healed; on an error the
// remaining orphans are left for the next pass (the detach latch makes a
// partial failure retryable).
func (m *Manager) ReattachOrphans(primary int) ([]int, error) {
	g := m.group(primary)
	if g == nil {
		return nil, fmt.Errorf("repl: dn%d has no replica group", primary)
	}
	if g.failing.Load() {
		return nil, fmt.Errorf("repl: dn%d's group has a failover in progress", primary)
	}
	var healed []int
	for _, r := range *g.replicas.Load() {
		if !m.needsReseed(g, r, primary) || m.c.NodeIsDown(r.node) {
			continue
		}
		if err := m.reattach(g, r, primary); err != nil {
			return healed, err
		}
		healed = append(healed, r.node)
	}
	return healed, nil
}

// reattach replaces one replica object with a freshly seeded direct
// replica of primary on the same node.
func (m *Manager) reattach(g *group, r *replica, primary int) error {
	// Quiesce: latch the detach flag (ship retry loops bail, apply skips),
	// close the old log (the apply loop drains acking-through and exits),
	// and wait out any batch already inside the apply gate. After this,
	// nothing applies records to the node.
	r.detached.Store(true)
	r.log.close()
	r.applyGate.Lock()
	r.applyGate.Unlock() //nolint:staticcheck // empty critical section = quiesce barrier

	// Wipe and re-seed under the route barrier; the new replica registers
	// inside the barrier, so capture resumes exactly at the seed snapshot.
	_, err := m.attach(primary, r.link, func(onReady func(int)) (int, error) {
		if err := m.c.ReseedStandby(r.node, primary, onReady); err != nil {
			return 0, err
		}
		return r.node, nil
	})
	if err != nil {
		return err
	}

	// Retire the old replica object from the topology (the node now lives
	// in the group as the freshly attached replica).
	m.mu.Lock()
	removeCoW(&g.replicas, r)
	removeCoW(&g.direct, r)
	for _, p := range *g.replicas.Load() {
		removeCoW(&p.children, r)
	}
	m.mu.Unlock()
	return nil
}
