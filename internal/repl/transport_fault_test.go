package repl

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/tpcc"
	"repro/internal/transport"
	"repro/internal/types"
)

// keyOn finds an accounts key routed to the given data node.
func keyOn(c *cluster.Cluster, dn int) int64 {
	key := int64(0)
	for c.RouteKey(types.NewInt(key)) != dn {
		key++
	}
	return key
}

// TestPartitionedPrimaryFencedBeforePromotion pins the split-brain
// protection: a primary cut off from the coordinator — but alive, and
// still connected to its standby — takes no writes from the moment the
// partition exists, before any failover runs. Promotion then succeeds
// because the replication link drains the log tail, and the old primary's
// data survives intact on the promoted standby.
func TestPartitionedPrimaryFencedBeforePromotion(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 60)
	m := NewManager(c, Config{Mode: ModeSync})
	defer m.Close()
	attachAll(t, m, c)
	waitSynced(t, m, c.PrimaryIDs())

	before := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts").Rows[0]
	victim := 0
	key := keyOn(c, victim)

	// Sever only the coordinator<->primary links: the primary is alive and
	// its replication link still works, but no client can reach it.
	c.Fabric().CutLinks(transport.CN(), transport.DN(victim))

	// Fenced before promotion: the write fails instead of landing on the
	// partitioned primary, where it would be lost to the promoted standby.
	if _, err := s.Exec(fmt.Sprintf("UPDATE accounts SET balance = 1 WHERE id = %d", key)); !errors.Is(err, cluster.ErrNodeDown) {
		t.Fatalf("write to partitioned primary: got %v, want ErrNodeDown", err)
	}

	// Failover drains the ship log over the intact replication link and
	// promotes; the digest verify proves the mirror lost nothing.
	rep, err := m.Failover(victim)
	if err != nil {
		t.Fatalf("Failover under partition: %v", err)
	}
	if rep.Buckets == 0 {
		t.Fatalf("promotion flipped no buckets: %+v", rep)
	}

	// Service resumes on the promoted standby with identical contents.
	after := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts").Rows[0]
	if before[0].Int() != after[0].Int() || before[1].Int() != after[1].Int() {
		t.Fatalf("contents changed across partition failover: %v -> %v", before, after)
	}
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 42 WHERE id = %d", key))
	res := mustExec(t, s, fmt.Sprintf("SELECT balance FROM accounts WHERE id = %d", key))
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("write after partition failover not visible: %v", res.Rows)
	}
	c.Fabric().Heal()
}

// TestFailoverUnderPartition is the acceptance test for partition-driven
// automatic failover: a TPC-C mixed workload runs while a primary's
// coordinator links are severed mid-load; the failure detector (probing
// reachability through the fabric) promotes its standby on its own; no
// committed transaction is lost and the TPC-C invariants hold afterwards.
func TestFailoverUnderPartition(t *testing.T) {
	c := newCluster(t, 4, cluster.ModeGTMLite)
	cfg := tpcc.DefaultConfig(8, 0.9)
	if err := tpcc.Load(c, cfg); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c, Config{
		Mode:          ModeSync,
		AutoFailover:  true,
		ProbeInterval: 2 * time.Millisecond,
	})
	defer m.Close()
	attachAll(t, m, c)

	const drivers, txns = 4, 250
	ds := make([]*tpcc.Driver, drivers)
	var wg sync.WaitGroup
	for i := range ds {
		ds[i] = tpcc.NewDriver(c, cfg, int64(i))
		wg.Add(1)
		go func(d *tpcc.Driver) {
			defer wg.Done()
			if err := d.Run(txns); err != nil {
				t.Errorf("driver: %v", err)
			}
		}(ds[i])
	}

	// Partition a primary from the coordinator mid-load. It stays alive and
	// keeps its replication link, but the detector must see it unreachable
	// and promote without operator help.
	time.Sleep(3 * time.Millisecond)
	victim := 0
	c.Fabric().CutLinks(transport.CN(), transport.DN(victim))
	deadline := time.Now().Add(5 * time.Second)
	for m.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("automatic failover never happened under partition")
		}
		time.Sleep(500 * time.Microsecond)
	}
	wg.Wait()

	if _, ok := c.StandbyOf(victim); ok {
		t.Fatal("victim still has a standby pair after promotion")
	}

	// Zero committed-transaction loss: every order a driver saw commit is
	// present, none leaked from aborted attempts, and the TPC-C money/line
	// invariants hold cluster-wide.
	var committed, newOrders, orderLines int64
	for _, d := range ds {
		committed += d.Stats.Committed
		newOrders += d.Stats.NewOrders
		orderLines += d.Stats.OrderLines
	}
	if committed == 0 {
		t.Fatal("no transactions committed")
	}
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		t.Fatal(err)
	}
	s := c.NewSession()
	res := mustExec(t, s, "SELECT count(*) FROM orders")
	if got := res.Rows[0][0].Int(); got != newOrders {
		t.Fatalf("orders = %d, committed new orders = %d (lost or phantom transactions)", got, newOrders)
	}
	res = mustExec(t, s, "SELECT count(*) FROM order_line")
	if got := res.Rows[0][0].Int(); got != orderLines {
		t.Fatalf("order lines = %d, committed lines = %d", got, orderLines)
	}

	// Post-failover service with the partition still in place: the old
	// primary is gone from routing, so every shard is reachable again.
	d := tpcc.NewDriver(c, cfg, 99)
	if err := d.Run(50); err != nil {
		t.Fatalf("post-failover driver: %v", err)
	}
	if d.Stats.Committed == 0 {
		t.Fatal("post-failover driver committed nothing")
	}
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		t.Fatalf("invariants after post-failover load: %v", err)
	}
	c.Fabric().Heal()
}

// TestSyncDegradeOnLinkDrop pins the unreachable-standby behaviour: when
// the replication link drops every ReplShip, a sync-mode commit degrades
// to async after SyncTimeout instead of wedging, lag accumulates (taking
// the standby out of read rotation) without poisoning the pair, and the
// backlog drains to an identical mirror once the link heals.
func TestSyncDegradeOnLinkDrop(t *testing.T) {
	c := newCluster(t, 2, cluster.ModeGTMLite)
	s := setupAccounts(t, c, 20)
	m := NewManager(c, Config{Mode: ModeSync, SyncTimeout: 30 * time.Millisecond})
	defer m.Close()
	pairs := attachAll(t, m, c)
	waitSynced(t, m, c.PrimaryIDs())

	// Drop every ReplShip on dn0's replication link, unreachable standby.
	c.Fabric().InjectFault(transport.DN(0), transport.DN(pairs[0]),
		transport.Fault{Types: []transport.MsgType{transport.ReplShip}, Drop: true})

	key := keyOn(c, 0)
	start := time.Now()
	mustExec(t, s, fmt.Sprintf("UPDATE accounts SET balance = 7 WHERE id = %d", key))
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Fatalf("commit returned in %v; sync ack cannot have degraded via SyncTimeout", elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("degraded commit took %v, near-wedged", elapsed)
	}

	// The commit succeeded on the primary; the standby lags and leaves the
	// read rotation, but the pair is healthy — this is loss of redundancy,
	// not divergence.
	if lag := m.Lag(0); lag == 0 {
		t.Fatal("no lag while the replication link drops everything")
	}
	if m.Synced(0) {
		t.Fatal("standby still counted synced behind a dead link")
	}
	for _, rs := range m.Status().Replicas {
		if rs.Primary == 0 && rs.Broken {
			t.Fatal("link drop poisoned the replica; only apply errors may do that")
		}
	}

	// Heal the link: the retry loop delivers the backlog and the mirror
	// converges with no operator action.
	c.Fabric().ClearFaults()
	waitSynced(t, m, []int{0})
	mirrorsMatch(t, c, pairs)
	if dropped := c.Fabric().Stats().Get(transport.ReplShip).Dropped; dropped == 0 {
		t.Fatal("fault injection never dropped a ReplShip")
	}
}
