package repl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// replica is one standby mirror inside a replica group.
type replica struct {
	node int // the standby's data-node id
	g    *group

	// upstream is the node this replica ships from: the group primary for
	// a direct replica, the parent standby for a chained one. A failover
	// reparents survivors by storing the promoted node here; the apply
	// loop re-reads it per send, so retries migrate to the new link.
	upstream atomic.Int64
	// link is the WAN latency configured for this replica's ship link,
	// re-applied to the new upstream link when a failover reparents it.
	link transport.Latency

	log *shipLog
	// base is the group log offset at seed time: records appended before
	// base were part of the seed snapshot, so lag counts only what this
	// replica still has to apply.
	base int64

	appliedRecs atomic.Int64
	batches     atomic.Int64 // ReplShip batches delivered to this replica

	// applyGate serializes batch application with topology changes: a
	// chained attach holds it so base = parent.base + parent.applied is
	// consistent with the seed snapshot.
	applyGate sync.Mutex

	// children are chained standbys fed by this replica's apply loop
	// (copy-on-write under Manager.mu).
	children atomic.Pointer[[]*replica]

	// broken latches on an apply error (mirror divergence): the replica
	// is no longer readable or promotable; its queue keeps draining (and
	// acking) so sync-mode commits are still released.
	broken atomic.Bool
	// detached latches when a self-healing re-seed takes this replica
	// object out of service (its node re-enrolls under a fresh replica):
	// the apply loop stops applying — and ship retry loops bail — so the
	// node's partitions are quiescent while the cluster wipes and re-seeds
	// them. A detached replica acks through, like a broken one.
	detached atomic.Bool
	mu       sync.Mutex // guards err
	err      error
}

func newReplica(g *group, link transport.Latency) *replica {
	r := &replica{node: -1, g: g, link: link, log: newShipLog()}
	empty := []*replica{}
	r.children.Store(&empty)
	return r
}

// lag is the records committed on the group's primary that this replica
// has not applied yet (its distance from the group log's head).
func (r *replica) lag() int64 { return r.g.appended.Load() - r.base - r.appliedRecs.Load() }

func (r *replica) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.broken.Store(true)
}

func (r *replica) brokenErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// group is one shard's replica group: the current primary plus every
// standby mirroring it, directly or through a chain.
type group struct {
	// primary is the current primary node; failover re-keys the group
	// under the promoted replica.
	primary atomic.Int64
	// appended counts records captured from the (current) primary over
	// the group's lifetime — the log head every replica measures lag
	// against. It survives failovers: the promoted primary continues the
	// same stream.
	appended atomic.Int64
	// replicas is every replica of the group; direct is the subset fed
	// straight from the primary's commit tap (chained replicas are fed by
	// their parent's apply loop). Both copy-on-write under Manager.mu.
	replicas atomic.Pointer[[]*replica]
	direct   atomic.Pointer[[]*replica]
	// failing latches while a failover runs so it runs exactly once.
	failing atomic.Bool
	// rr is the read-replica round-robin cursor.
	rr atomic.Int64
}

func newGroup(primary int) *group {
	g := &group{}
	g.primary.Store(int64(primary))
	empty := []*replica{}
	g.replicas.Store(&empty)
	g.direct.Store(&empty)
	return g
}

func (m *Manager) group(primary int) *group { return (*m.groups.Load())[primary] }

// findReplica locates node as a standby in any group, returning its group
// and replica (nil, nil if absent).
func (m *Manager) findReplica(node int) (*group, *replica) {
	for _, g := range *m.groups.Load() {
		for _, r := range *g.replicas.Load() {
			if r.node == node {
				return g, r
			}
		}
	}
	return nil, nil
}

// appendCoW appends r to a copy-on-write replica slice. Caller holds
// Manager.mu.
func appendCoW(p *atomic.Pointer[[]*replica], r *replica) {
	old := *p.Load()
	next := make([]*replica, len(old)+1)
	copy(next, old)
	next[len(old)] = r
	p.Store(&next)
}

// removeCoW removes r from a copy-on-write replica slice (no-op when
// absent). Caller holds Manager.mu.
func removeCoW(p *atomic.Pointer[[]*replica], r *replica) {
	old := *p.Load()
	next := make([]*replica, 0, len(old))
	for _, x := range old {
		if x != r {
			next = append(next, x)
		}
	}
	p.Store(&next)
}

// ReplicaSpec describes one replica to attach.
type ReplicaSpec struct {
	// Upstream is the node to mirror: a primary (direct replica) or an
	// existing standby (chained, standby-of-standby replica).
	Upstream int
	// Link, when non-zero, shapes the replica's ship link — the modeled
	// geo (WAN) latency of this leg of the group.
	Link transport.Latency
}

// AttachStandby provisions one direct standby for upstream over a LAN
// link (single-standby compatibility wrapper around AttachReplica).
func (m *Manager) AttachStandby(upstream int) (int, error) {
	return m.AttachReplica(ReplicaSpec{Upstream: upstream})
}

// AttachReplica provisions a standby per spec: the cluster seeds a new
// node with a physical mirror under the route barrier, and the replica's
// log starts capturing inside that same barrier — no committed write can
// fall between the seed snapshot and the first shipped record. Chained
// replicas (spec.Upstream names an existing standby) seed from the parent
// mirror while the parent's apply loop is quiesced, and are fed by it
// afterwards.
func (m *Manager) AttachReplica(spec ReplicaSpec) (int, error) {
	return m.attach(spec.Upstream, spec.Link, func(onReady func(int)) (int, error) {
		return m.c.AddStandby(spec.Upstream, onReady)
	})
}

// ReenrollStandby returns a retired primary to service as a fresh standby
// of upstream (typically the successor promoted in its place): the
// cluster wipes its partitions, re-seeds them under the route barrier,
// and shipping resumes from the seed snapshot — closing the failover
// lifecycle loop, since the group regains its configured redundancy
// without provisioning a new node.
func (m *Manager) ReenrollStandby(node, upstream int) error {
	_, err := m.attach(upstream, transport.Latency{}, func(onReady func(int)) (int, error) {
		if err := m.c.ReenrollStandby(node, upstream, onReady); err != nil {
			return 0, err
		}
		return node, nil
	})
	return err
}

// attach is the shared enrollment path: resolve the upstream into a group
// (joining a parent replica for chains, or creating/joining the primary's
// group), run the cluster-side enrollment with an onReady that registers
// the replica inside the barrier, then start its apply loop.
func (m *Manager) attach(up int, link transport.Latency, enroll func(onReady func(int)) (int, error)) (int, error) {
	g := m.group(up)
	var parent *replica
	if g == nil {
		g, parent = m.findReplica(up)
	}
	if g != nil && g.failing.Load() {
		return 0, fmt.Errorf("repl: dn%d's group has a failover in progress", up)
	}
	if parent != nil && parent.broken.Load() {
		return 0, fmt.Errorf("repl: cannot chain off diverged standby dn%d: %w", up, parent.brokenErr())
	}
	if g == nil {
		g = newGroup(up)
	}
	r := newReplica(g, link)

	if parent != nil {
		// Quiesce the parent's apply loop: base must equal exactly what
		// the seed snapshot contains, and the parent must not advance (or
		// start forwarding) mid-seed.
		parent.applyGate.Lock()
		defer parent.applyGate.Unlock()
	}

	sid, err := enroll(func(standbyID int) {
		// Runs under the cluster's route barrier.
		r.node = standbyID
		r.upstream.Store(int64(up))
		m.mu.Lock()
		defer m.mu.Unlock()
		if parent != nil {
			r.base = parent.base + parent.appliedRecs.Load()
			appendCoW(&g.replicas, r)
			appendCoW(&parent.children, r)
			return
		}
		// Join the registered group if a concurrent attach won the race
		// to create it.
		if cur := (*m.groups.Load())[up]; cur != nil {
			g = cur
			r.g = g
		} else {
			m.storeGroupLocked(up, g)
		}
		r.base = g.appended.Load()
		appendCoW(&g.replicas, r)
		appendCoW(&g.direct, r)
	})
	if err != nil {
		return 0, err
	}
	if link != (transport.Latency{}) {
		m.fab.SetLinkLatency(transport.DN(up), transport.DN(sid), link)
	}
	m.wg.Add(1)
	go m.applyLoop(r)
	return sid, nil
}

// storeGroupLocked publishes a new group under primary (caller holds
// Manager.mu).
func (m *Manager) storeGroupLocked(primary int, g *group) {
	old := *m.groups.Load()
	next := make(map[int]*group, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[primary] = g
	m.groups.Store(&next)
}

// ReadReplica returns a replica of primary's shard that is currently safe
// to read (unbroken, zero lag), round-robining across the group so read
// offload spreads over all N replicas. It is the oracle wired into
// cluster.SetStandbyReads — consulted under the route lock on every
// SELECT, hence atomics only.
func (m *Manager) ReadReplica(primary int) (int, bool) {
	g := m.group(primary)
	if g == nil {
		return 0, false
	}
	reps := *g.replicas.Load()
	n := len(reps)
	if n == 0 {
		return 0, false
	}
	start := int(g.rr.Add(1) % int64(n))
	if start < 0 {
		start += n
	}
	for i := 0; i < n; i++ {
		r := reps[(start+i)%n]
		if !r.broken.Load() && !r.detached.Load() && r.lag() == 0 {
			return r.node, true
		}
	}
	return 0, false
}

// Replicas returns the node ids of primary's replica group (direct and
// chained), in attach order.
func (m *Manager) Replicas(primary int) []int {
	g := m.group(primary)
	if g == nil {
		return nil
	}
	var out []int
	for _, r := range *g.replicas.Load() {
		out = append(out, r.node)
	}
	return out
}
