package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// rangeFragments builds n fragments, fragment i emitting rows
// (i, 0), (i, 1), ..., (i, perFrag-1).
func rangeFragments(n, perFrag int) []Fragment {
	frags := make([]Fragment, n)
	for i := range frags {
		i := i
		frags[i] = func(_ *Ctx, emit func(types.Row) bool) error {
			for j := 0; j < perFrag; j++ {
				if !emit(intRow(int64(i), int64(j))) {
					return nil
				}
			}
			return nil
		}
	}
	return frags
}

func TestExchangeOrderedMatchesSequential(t *testing.T) {
	schema := schema2("frag", "seq")
	for _, degree := range []int{1, 2, 4, 16} {
		ex := NewParallelSource("t", schema, degree, func() ([]Fragment, error) {
			return rangeFragments(5, 7), nil
		})
		rows := collect(t, ex)
		if len(rows) != 35 {
			t.Fatalf("degree %d: got %d rows", degree, len(rows))
		}
		// Ordered merge: fragment order then emission order, at any degree.
		for k, r := range rows {
			if r[0].Int() != int64(k/7) || r[1].Int() != int64(k%7) {
				t.Fatalf("degree %d: row %d = %v", degree, k, r)
			}
		}
	}
}

func TestExchangeReopen(t *testing.T) {
	ex := NewParallelSource("t", schema2("a", "b"), 4, func() ([]Fragment, error) {
		return rangeFragments(3, 4), nil
	})
	first := collect(t, ex)
	second := collect(t, ex)
	if len(first) != 12 || len(second) != 12 {
		t.Fatalf("reopen changed row count: %d then %d", len(first), len(second))
	}
}

func TestExchangePlanError(t *testing.T) {
	wantErr := errors.New("catalog: no such table")
	ex := NewParallelSource("t", schema2("a", "b"), 4, func() ([]Fragment, error) {
		return nil, wantErr
	})
	if err := ex.Open(NewCtx(time.Unix(0, 0))); !errors.Is(err, wantErr) {
		t.Fatalf("Open error = %v, want %v", err, wantErr)
	}
}

// TestExchangeFragmentErrorCancelsSiblings checks the ordered path: one
// failing fragment must cancel the others (their emit returns false) and
// Open must surface exactly that error after joining every worker — no
// deadlock, no goroutine leak past Close.
func TestExchangeFragmentErrorCancelsSiblings(t *testing.T) {
	wantErr := errors.New("dn2: snapshot unavailable")
	var emitted atomic.Int64
	ex := NewParallelSource("t", schema2("a", "b"), 4, func() ([]Fragment, error) {
		frags := make([]Fragment, 8)
		for i := range frags {
			i := i
			frags[i] = func(_ *Ctx, emit func(types.Row) bool) error {
				if i == 2 {
					return wantErr
				}
				// Emit until cancellation propagates.
				for j := 0; j < 1_000_000; j++ {
					emitted.Add(1)
					if !emit(intRow(int64(i), int64(j))) {
						return nil
					}
				}
				return nil
			}
		}
		return frags, nil
	})
	err := ex.Open(NewCtx(time.Unix(0, 0)))
	if !errors.Is(err, wantErr) {
		t.Fatalf("Open error = %v, want %v", err, wantErr)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	// Cancellation is advisory, but siblings must have stopped well short
	// of their full output (8M rows if nothing canceled).
	if n := emitted.Load(); n >= 7_000_000 {
		t.Fatalf("siblings were not canceled: %d rows emitted", n)
	}
}

// TestExchangeStreamingErrorNoDeadlock exercises the unordered path, where
// producers can be parked on a full channel when a sibling fails: the
// consumer must see the error and Close must join everyone.
func TestExchangeStreamingErrorNoDeadlock(t *testing.T) {
	wantErr := errors.New("fragment exploded")
	ex := &Exchange{
		Name:     "t",
		Out:      schema2("a", "b"),
		Parallel: 4,
		Plan: func() ([]Fragment, error) {
			frags := make([]Fragment, 4)
			for i := range frags {
				i := i
				frags[i] = func(_ *Ctx, emit func(types.Row) bool) error {
					if i == 3 {
						return wantErr
					}
					// Far more rows than the channel buffers, so producers
					// block if nobody drains.
					for j := 0; j < exchangeBuffer*10; j++ {
						if !emit(intRow(int64(i), int64(j))) {
							return nil
						}
					}
					return nil
				}
			}
			return frags, nil
		},
	}
	ctx := NewCtx(time.Unix(0, 0))
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var err error
	for {
		_, err = ex.Next(ctx)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("Next error = %v, want %v", err, wantErr)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeStreamingAbandonedConsumer closes a streaming exchange while
// producers are still blocked on the channel; Close must unblock and join
// them rather than leak goroutines.
func TestExchangeStreamingAbandonedConsumer(t *testing.T) {
	ex := &Exchange{
		Name:     "t",
		Out:      schema2("a", "b"),
		Parallel: 4,
		Plan: func() ([]Fragment, error) {
			return rangeFragments(4, exchangeBuffer*4), nil
		},
	}
	ctx := NewCtx(time.Unix(0, 0))
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Read a handful of rows, then walk away.
	for i := 0; i < 3; i++ {
		if _, err := ex.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeFragmentPanicBecomesError(t *testing.T) {
	ex := NewParallelSource("t", schema2("a", "b"), 4, func() ([]Fragment, error) {
		frags := rangeFragments(4, 10)
		frags[1] = func(_ *Ctx, _ func(types.Row) bool) error {
			panic("index out of range on dn1")
		}
		return frags, nil
	})
	err := ex.Open(NewCtx(time.Unix(0, 0)))
	if err == nil {
		t.Fatal("panicking fragment must surface an error")
	}
	if msg := fmt.Sprint(err); msg == "" || !containsAll(msg, "panicked", "dn1") {
		t.Fatalf("unhelpful panic error: %v", err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestExchangeSequentialInlinePath(t *testing.T) {
	// Degree 1 must not spawn workers: fragments run on the caller's
	// goroutine, observable through an unsynchronized local variable.
	calls := 0
	ex := NewParallelSource("t", schema2("a", "b"), 1, func() ([]Fragment, error) {
		frags := make([]Fragment, 3)
		for i := range frags {
			i := i
			frags[i] = func(_ *Ctx, emit func(types.Row) bool) error {
				calls++ // safe only if inline
				emit(intRow(int64(i), 0))
				return nil
			}
		}
		return frags, nil
	})
	rows := collect(t, ex)
	if len(rows) != 3 || calls != 3 {
		t.Fatalf("rows=%d calls=%d", len(rows), calls)
	}
}
