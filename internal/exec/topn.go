package exec

import (
	"io"

	"repro/internal/types"
)

// topnItem is one candidate row inside a TopNHeap: the row, its evaluated
// sort-key datums, and its arrival sequence number (for stable tie-breaks).
type topnItem struct {
	row types.Row
	key []types.Datum
	seq int64
}

// TopNHeap accumulates the top `limit` rows under `keys` with ties broken
// by arrival order (earlier wins), so the kept set — and its order — is
// exactly what a stable Sort followed by a Limit would produce. It is the
// shared bounded accumulator behind the CN-side TopN operator and the
// DN-side fragment TopN pushdown: a max-heap of size ≤ limit whose root is
// the worst row currently kept, so each additional row costs O(log limit)
// instead of materializing the full input.
//
// With no keys the heap degenerates to "first `limit` rows by arrival",
// which is what a bare LIMIT keeps; callers can then stop feeding it as
// soon as Full reports true.
type TopNHeap struct {
	keys  []SortKey
	limit int64
	ctx   *Ctx
	items []topnItem
	next  int64
}

// NewTopNHeap returns an empty accumulator keeping the top `limit` rows.
// ctx is used to evaluate the key expressions against each pushed row.
func NewTopNHeap(ctx *Ctx, keys []SortKey, limit int64) *TopNHeap {
	return &TopNHeap{keys: keys, limit: limit, ctx: ctx}
}

// less reports whether a orders strictly before b: by the sort keys first
// (respecting Desc), then by arrival sequence — the same comparator a
// stable Sort induces. Comparison errors propagate like Sort's.
func (h *TopNHeap) less(a, b *topnItem) (bool, error) {
	for k, key := range h.keys {
		c, err := types.Compare(a.key[k], b.key[k])
		if err != nil {
			return false, err
		}
		if c != 0 {
			if key.Desc {
				return c > 0, nil
			}
			return c < 0, nil
		}
	}
	return a.seq < b.seq, nil
}

// Push offers one row to the accumulator. The row is retained by reference;
// callers must not mutate it afterwards.
func (h *TopNHeap) Push(row types.Row) error {
	if h.limit <= 0 {
		return nil
	}
	it := topnItem{row: row, seq: h.next}
	h.next++
	if len(h.keys) > 0 {
		it.key = make([]types.Datum, len(h.keys))
		for k, key := range h.keys {
			v, err := key.Expr.Eval(h.ctx, row)
			if err != nil {
				return err
			}
			it.key[k] = v
		}
	}
	if int64(len(h.items)) < h.limit {
		h.items = append(h.items, it)
		return h.siftUp(len(h.items) - 1)
	}
	// Heap full: the new row displaces the current worst only if it orders
	// strictly before it. Ties keep the incumbent (earlier arrival).
	better, err := h.less(&it, &h.items[0])
	if err != nil || !better {
		return err
	}
	h.items[0] = it
	return h.siftDown(0)
}

// Full reports whether the heap holds `limit` rows. With no sort keys a
// full heap can never improve (later arrivals always lose ties), so
// callers may stop scanning.
func (h *TopNHeap) Full() bool { return int64(len(h.items)) >= h.limit }

// Len returns the number of rows currently kept.
func (h *TopNHeap) Len() int { return len(h.items) }

// siftUp restores the max-heap property (parent orders after child) from
// leaf i upward.
func (h *TopNHeap) siftUp(i int) error {
	for i > 0 {
		p := (i - 1) / 2
		parentFirst, err := h.less(&h.items[p], &h.items[i])
		if err != nil {
			return err
		}
		if !parentFirst { // parent orders after child: heap order holds
			return nil
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
	return nil
}

// siftDown restores the max-heap property from node i downward.
func (h *TopNHeap) siftDown(i int) error {
	n := len(h.items)
	for {
		worst := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c >= n {
				continue
			}
			after, err := h.less(&h.items[worst], &h.items[c])
			if err != nil {
				return err
			}
			if after { // child orders after current worst
				worst = c
			}
		}
		if worst == i {
			return nil
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// SortedRows returns the kept rows in ascending sort order (keys, then
// arrival) — the order a stable Sort + Limit would emit them in.
func (h *TopNHeap) SortedRows() ([]types.Row, error) {
	items := append([]topnItem(nil), h.items...)
	var cmpErr error
	sortItems(items, func(a, b *topnItem) bool {
		less, err := h.less(a, b)
		if err != nil && cmpErr == nil {
			cmpErr = err
		}
		return less
	})
	if cmpErr != nil {
		return nil, cmpErr
	}
	rows := make([]types.Row, len(items))
	for i, it := range items {
		rows[i] = it.row
	}
	return rows, nil
}

// ArrivalRows returns the kept rows in their original arrival order. DN
// fragments ship in this order so the CN-side merge sees the same relative
// sequence it would without pushdown, keeping merged output byte-identical
// at every parallel degree.
func (h *TopNHeap) ArrivalRows() ([]types.Row, error) {
	items := append([]topnItem(nil), h.items...)
	sortItems(items, func(a, b *topnItem) bool { return a.seq < b.seq })
	rows := make([]types.Row, len(items))
	for i, it := range items {
		rows[i] = it.row
	}
	return rows, nil
}

// sortItems is an insertion sort over the (≤ limit, typically tiny) kept
// set; stable by construction.
func sortItems(items []topnItem, less func(a, b *topnItem) bool) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && less(&items[j], &items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// TopN is the bounded ORDER BY + LIMIT operator: it keeps only the top
// Limit rows of its input (under Keys, ties by arrival) and emits them in
// sorted order. It replaces Sort+Limit pairs in the planner; output is
// row-for-row identical to a stable Sort followed by a Limit, while
// memory stays O(Limit) instead of O(input).
type TopN struct {
	Child Operator
	Keys  []SortKey
	Limit int64

	rows []types.Row
	pos  int
}

// Schema implements Operator.
func (t *TopN) Schema() *types.Schema { return t.Child.Schema() }

// Open implements Operator.
func (t *TopN) Open(ctx *Ctx) error {
	if err := t.Child.Open(ctx); err != nil {
		return err
	}
	h := NewTopNHeap(ctx, t.Keys, t.Limit)
	for {
		row, err := t.Child.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := h.Push(row); err != nil {
			return err
		}
		if len(t.Keys) == 0 && h.Full() {
			break // bare LIMIT: later rows always lose ties
		}
	}
	rows, err := h.SortedRows()
	if err != nil {
		return err
	}
	t.rows, t.pos = rows, 0
	return nil
}

// Next implements Operator.
func (t *TopN) Next(*Ctx) (types.Row, error) {
	if t.pos >= len(t.rows) {
		return nil, io.EOF
	}
	r := t.rows[t.pos]
	t.pos++
	return r, nil
}

// Close implements Operator.
func (t *TopN) Close() error {
	t.rows = nil
	return t.Child.Close()
}
