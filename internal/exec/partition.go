package exec

// Partitioner is the streaming seam between scan fragments and a
// partitioned hash join: writers hash rows into per-partition batches and
// push them through bounded per-(source,partition) FIFO queues; one
// consumer per partition drains its queues in source order. The bounds
// give backpressure — a shuffle never materializes a full intermediate,
// writers block once a consumer falls queueCap batches behind — and the
// fixed drain order keeps consumption deterministic for a fixed input
// order per source.

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// ErrPartitionerCanceled is returned by Write and Drain after Cancel.
var ErrPartitionerCanceled = errors.New("exec: partitioner canceled")

// pqueue is one bounded FIFO of row batches from one source to one
// partition.
type pqueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	batches [][]types.Row
	closed  bool
}

// Partitioner routes row batches from nSources writers to nParts
// consumers.
type Partitioner struct {
	nSources  int
	nParts    int
	batchRows int
	queueCap  int
	queues    []*pqueue // nSources × nParts, row-major by source
	canceled  atomic.Bool
	// onBatch, when set, observes every flushed batch before it is
	// enqueued — the hook where the engine charges fabric bytes and
	// injects faults. An error fails the writer.
	onBatch func(src, part int, rows []types.Row) error
}

// NewPartitioner creates a partitioner with the given fan-in/fan-out.
// batchRows is the flush threshold per (source,partition) pending batch;
// queueCap bounds each queue's depth in batches (≥1). onBatch may be nil.
func NewPartitioner(nSources, nParts, batchRows, queueCap int, onBatch func(src, part int, rows []types.Row) error) *Partitioner {
	if batchRows < 1 {
		batchRows = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	p := &Partitioner{
		nSources:  nSources,
		nParts:    nParts,
		batchRows: batchRows,
		queueCap:  queueCap,
		queues:    make([]*pqueue, nSources*nParts),
		onBatch:   onBatch,
	}
	for i := range p.queues {
		q := &pqueue{}
		q.cond = sync.NewCond(&q.mu)
		p.queues[i] = q
	}
	return p
}

func (p *Partitioner) queue(src, part int) *pqueue { return p.queues[src*p.nParts+part] }

// Cancel aborts all writers and drainers. Safe to call repeatedly and
// concurrently.
func (p *Partitioner) Cancel() {
	p.canceled.Store(true)
	for _, q := range p.queues {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// PartWriter is one source's write handle; not safe for concurrent use by
// multiple goroutines.
type PartWriter struct {
	p       *Partitioner
	src     int
	pending [][]types.Row
}

// Writer returns the write handle for source src.
func (p *Partitioner) Writer(src int) *PartWriter {
	return &PartWriter{p: p, src: src, pending: make([][]types.Row, p.nParts)}
}

// Write appends a row to partition part, flushing the pending batch when
// it reaches the batch size. Blocks while the target queue is full.
func (w *PartWriter) Write(part int, row types.Row) error {
	w.pending[part] = append(w.pending[part], row)
	if len(w.pending[part]) >= w.p.batchRows {
		return w.flush(part)
	}
	return nil
}

func (w *PartWriter) flush(part int) error {
	rows := w.pending[part]
	if len(rows) == 0 {
		return nil
	}
	w.pending[part] = nil
	if w.p.onBatch != nil {
		if err := w.p.onBatch(w.src, part, rows); err != nil {
			return err
		}
	}
	q := w.p.queue(w.src, part)
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.batches) >= w.p.queueCap {
		if w.p.canceled.Load() {
			return ErrPartitionerCanceled
		}
		q.cond.Wait()
	}
	if w.p.canceled.Load() {
		return ErrPartitionerCanceled
	}
	q.batches = append(q.batches, rows)
	q.cond.Broadcast()
	return nil
}

// Close flushes all pending batches of this source and marks its queues
// complete. Every writer must Close (even after an error) or drainers
// block forever.
func (w *PartWriter) Close() error {
	var firstErr error
	for part := 0; part < w.p.nParts; part++ {
		if err := w.flush(part); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for part := 0; part < w.p.nParts; part++ {
		q := w.p.queue(w.src, part)
		q.mu.Lock()
		q.closed = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	return firstErr
}

// Drain consumes partition part: all batches of source 0 in FIFO order,
// then source 1, and so on — a fixed merge order, so output is
// deterministic for deterministic inputs. fn errors abort the drain.
func (p *Partitioner) Drain(part int, fn func(rows []types.Row) error) error {
	for src := 0; src < p.nSources; src++ {
		q := p.queue(src, part)
		for {
			q.mu.Lock()
			for len(q.batches) == 0 && !q.closed && !p.canceled.Load() {
				q.cond.Wait()
			}
			if p.canceled.Load() {
				q.mu.Unlock()
				return ErrPartitionerCanceled
			}
			if len(q.batches) == 0 { // closed and empty → next source
				q.mu.Unlock()
				break
			}
			rows := q.batches[0]
			q.batches = q.batches[1:]
			q.cond.Broadcast()
			q.mu.Unlock()
			if err := fn(rows); err != nil {
				return err
			}
		}
	}
	return nil
}
