package exec

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/types"
)

// exchangeBuffer is the bounded-channel capacity of a streaming Exchange:
// enough slack that producers stay busy while the consumer drains, small
// enough that a slow consumer backpressures the fragments.
const exchangeBuffer = 256

// Fragment is one partition's share of an Exchange: it emits rows until
// exhausted (or until emit returns false, which signals cancellation) and
// returns the fragment's error. In the cluster, one fragment is one data
// node's scan or partial aggregate.
type Fragment func(ctx *Ctx, emit func(types.Row) bool) error

// Exchange fans a set of fragments out across worker goroutines and merges
// their output into one stream — the intra-query parallelism operator of an
// MPP plan. Properties:
//
//   - Parallel caps concurrent fragments. Degree <= 1 runs them inline on
//     the caller's goroutine in fragment order, byte-identical to a
//     sequential loop (the degree-1 path tests and EXPLAIN rely on).
//   - Ordered buffers each fragment's rows and concatenates them in
//     fragment order, so output is deterministic at any degree. Unordered
//     streams rows through a bounded channel as they are produced.
//   - The first fragment error (or panic, converted to an error) cancels
//     the siblings — their emit returns false — and is the one error
//     surfaced from Open/Next. Close always joins every worker, so no
//     fragment outlives the operator.
//
// Fragments run on worker goroutines under forked contexts, so they must be
// partition-pure: no outer-row references and no shared mutable state
// beyond what they synchronize themselves.
type Exchange struct {
	Name string
	Out  *types.Schema
	// Plan produces the fragment set; it is re-invoked on every Open (like
	// Source.ScanFn) so the operator can be re-executed, and its error is
	// returned from Open — the place for catalog lookups and liveness
	// checks that a callback-style Source could not fail from.
	Plan func() ([]Fragment, error)
	// Parallel is the max number of concurrently running fragments;
	// values <= 1 select the sequential inline path.
	Parallel int
	// Ordered selects the deterministic merge (see type comment).
	Ordered bool

	// materialized output (sequential and ordered modes)
	rows []types.Row
	pos  int

	// streaming state (unordered mode)
	ch     chan types.Row
	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup

	errOnce   sync.Once
	err       error
	streaming bool
}

// NewParallelSource builds an ordered Exchange over a lazily-planned
// fragment set: the drop-in parallel replacement for NewSource over
// per-partition scan closures. Ordered merging keeps results identical to
// the sequential loop at every degree.
func NewParallelSource(name string, schema *types.Schema, degree int, plan func() ([]Fragment, error)) *Exchange {
	return &Exchange{Name: name, Out: schema, Plan: plan, Parallel: degree, Ordered: true}
}

// Schema implements Operator.
func (e *Exchange) Schema() *types.Schema { return e.Out }

// setErr records the first fragment error and cancels the siblings.
func (e *Exchange) setErr(err error) {
	e.errOnce.Do(func() {
		e.err = err
		close(e.done)
	})
}

// canceled reports whether a sibling already failed or Close ran.
func (e *Exchange) canceled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// runFragment invokes f with panic-to-error recovery: a panicking DN
// fragment must surface as a query error, not tear down the process with
// siblings mid-flight.
func runFragment(ctx *Ctx, f Fragment, emit func(types.Row) bool) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exec: exchange fragment panicked: %v", p)
		}
	}()
	return f(ctx, emit)
}

// fork returns an independent evaluation context for one worker: fragments
// share the statement clock but must not share the outer-row stack.
func (c *Ctx) fork() *Ctx { return &Ctx{Now: c.Now} }

// Open implements Operator.
func (e *Exchange) Open(ctx *Ctx) error {
	frags, err := e.Plan()
	if err != nil {
		return err
	}
	e.rows = e.rows[:0]
	e.pos = 0
	e.err = nil
	e.errOnce = sync.Once{}
	e.closed = sync.Once{}
	e.done = make(chan struct{})
	e.streaming = false

	degree := e.Parallel
	if degree > len(frags) {
		degree = len(frags)
	}
	if degree <= 1 || len(frags) <= 1 {
		// Sequential path: the exact pre-exchange loop.
		for _, f := range frags {
			if err := runFragment(ctx, f, func(r types.Row) bool {
				e.rows = append(e.rows, r)
				return true
			}); err != nil {
				return err
			}
		}
		return nil
	}

	if e.Ordered {
		return e.openOrdered(ctx, frags, degree)
	}
	e.openStreaming(ctx, frags, degree)
	return nil
}

// openOrdered runs fragments concurrently into per-fragment buffers, then
// concatenates them in fragment order. It returns only after every worker
// has exited.
func (e *Exchange) openOrdered(ctx *Ctx, frags []Fragment, degree int) error {
	bufs := make([][]types.Row, len(frags))
	work := make(chan int)
	for w := 0; w < degree; w++ {
		e.wg.Add(1)
		fctx := ctx.fork()
		go func() {
			defer e.wg.Done()
			for idx := range work {
				if e.canceled() {
					continue // drain remaining indexes without running them
				}
				emit := func(r types.Row) bool {
					bufs[idx] = append(bufs[idx], r)
					return !e.canceled()
				}
				if err := runFragment(fctx, frags[idx], emit); err != nil {
					e.setErr(err)
				}
			}
		}()
	}
	for i := range frags {
		work <- i
	}
	close(work)
	e.wg.Wait()
	if e.err != nil {
		return e.err
	}
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	if cap(e.rows) < n {
		e.rows = make([]types.Row, 0, n)
	}
	for _, b := range bufs {
		e.rows = append(e.rows, b...)
	}
	return nil
}

// openStreaming starts producers feeding the bounded channel; Next consumes
// until the channel closes.
func (e *Exchange) openStreaming(ctx *Ctx, frags []Fragment, degree int) {
	e.streaming = true
	e.ch = make(chan types.Row, exchangeBuffer)
	work := make(chan int)
	for w := 0; w < degree; w++ {
		e.wg.Add(1)
		fctx := ctx.fork()
		go func() {
			defer e.wg.Done()
			for idx := range work {
				if e.canceled() {
					continue
				}
				emit := func(r types.Row) bool {
					select {
					case e.ch <- r:
						return true
					case <-e.done:
						return false
					}
				}
				if err := runFragment(fctx, frags[idx], emit); err != nil {
					e.setErr(err)
				}
			}
		}()
	}
	go func() {
		for i := range frags {
			work <- i
		}
		close(work)
	}()
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
}

// Next implements Operator.
func (e *Exchange) Next(*Ctx) (types.Row, error) {
	if !e.streaming {
		if e.pos >= len(e.rows) {
			return nil, io.EOF
		}
		r := e.rows[e.pos]
		e.pos++
		return r, nil
	}
	r, ok := <-e.ch
	if !ok {
		if e.err != nil {
			return nil, e.err
		}
		return nil, io.EOF
	}
	return r, nil
}

// RowCount implements Sized for the materialized modes (-1 when streaming).
func (e *Exchange) RowCount() int {
	if e.streaming {
		return -1
	}
	return len(e.rows)
}

// Close implements Operator: it cancels any still-running fragments and
// joins them, so no worker goroutine survives the operator.
func (e *Exchange) Close() error {
	if e.done != nil {
		e.closed.Do(func() { e.setErr(nil) }) // close done without recording an error
	}
	if e.streaming {
		// Unblock producers parked on the full channel, then join.
		for range e.ch {
		}
	}
	e.wg.Wait()
	e.rows = e.rows[:0]
	return nil
}
