package exec

import (
	"io"
	"testing"
	"time"

	"repro/internal/types"
)

// TestExprCanonicalStrings pins the canonical rendering of every compiled
// expression node — the learning optimizer's step keys are built from
// these strings, so any change here silently invalidates stored plans.
func TestExprCanonicalStrings(t *testing.T) {
	colA := &ColRef{Index: 0, Name: "T.A"}
	colAnon := &ColRef{Index: 2}
	outer := &OuterRef{Up: 1, Index: 3, Name: "O.X"}
	outerAnon := &OuterRef{Up: 2, Index: 1}
	cases := []struct {
		e    Expr
		want string
	}{
		{&Const{Value: types.NewInt(5)}, "5"},
		{&Const{Value: types.NewString("s")}, "'s'"},
		{colA, "T.A"},
		{colAnon, "$2"},
		{outer, "O.X"},
		{outerAnon, "outer(2,$1)"},
		{&BinOp{Op: ">", Left: colA, Right: &Const{Value: types.NewInt(10)}}, "(T.A > 10)"},
		{&Not{Child: colA}, "(NOT T.A)"},
		{&Neg{Child: colA}, "(-T.A)"},
		{&IsNullExpr{Child: colA}, "(T.A IS NULL)"},
		{&IsNullExpr{Child: colA, Not: true}, "(T.A IS NOT NULL)"},
		{&InListExpr{Child: colA, List: []Expr{&Const{Value: types.NewInt(1)}, &Const{Value: types.NewInt(2)}}}, "(T.A IN (1,2))"},
		{&InListExpr{Child: colA, Not: true, List: []Expr{&Const{Value: types.NewInt(1)}}}, "(T.A NOT IN (1))"},
		{&BetweenExpr{Child: colA, Lo: &Const{Value: types.NewInt(1)}, Hi: &Const{Value: types.NewInt(9)}}, "(T.A BETWEEN 1 AND 9)"},
		{&BetweenExpr{Child: colA, Not: true, Lo: &Const{Value: types.NewInt(1)}, Hi: &Const{Value: types.NewInt(9)}}, "(T.A NOT BETWEEN 1 AND 9)"},
		{&Func{Name: "abs", Args: []Expr{colA}}, "abs(T.A)"},
		{&CaseWhen{Operand: colA, Whens: []Expr{&Const{Value: types.NewInt(1)}}, Thens: []Expr{&Const{Value: types.NewString("one")}}, Else: &Const{Value: types.Null}},
			"CASE T.A WHEN 1 THEN 'one' ELSE NULL END"},
		{&Subplan{}, "(subquery)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestNotNegErrors(t *testing.T) {
	ctx := NewCtx(time.Now())
	if _, err := (&Not{Child: &Const{Value: types.NewInt(1)}}).Eval(ctx, nil); err == nil {
		t.Error("NOT over int must fail")
	}
	if _, err := (&Neg{Child: &Const{Value: types.NewString("x")}}).Eval(ctx, nil); err == nil {
		t.Error("negating a string must fail")
	}
	if v, err := (&Neg{Child: &Const{Value: types.NewFloat(2.5)}}).Eval(ctx, nil); err != nil || v.Float() != -2.5 {
		t.Errorf("neg float = %v, %v", v, err)
	}
	if v, err := (&Neg{Child: &Const{Value: types.Null}}).Eval(ctx, nil); err != nil || !v.IsNull() {
		t.Errorf("neg null = %v, %v", v, err)
	}
}

func TestOuterRefErrors(t *testing.T) {
	ctx := NewCtx(time.Now())
	o := &OuterRef{Up: 1, Index: 0}
	if _, err := o.Eval(ctx, nil); err == nil {
		t.Error("outer ref with empty stack must fail")
	}
	ctx.OuterRows = append(ctx.OuterRows, types.Row{types.NewInt(9)})
	if v, err := o.Eval(ctx, nil); err != nil || v.Int() != 9 {
		t.Errorf("outer ref = %v, %v", v, err)
	}
	bad := &OuterRef{Up: 1, Index: 5}
	if _, err := bad.Eval(ctx, nil); err == nil {
		t.Error("out-of-range outer index must fail")
	}
}

func TestTimeArithErrors(t *testing.T) {
	ctx := NewCtx(time.Now())
	ts := &Const{Value: types.NewTime(time.Unix(0, 0))}
	str := &Const{Value: types.NewString("x")}
	if _, err := (&BinOp{Op: "*", Left: ts, Right: ts}).Eval(ctx, nil); err == nil {
		t.Error("ts * ts must fail")
	}
	if _, err := (&BinOp{Op: "+", Left: ts, Right: str}).Eval(ctx, nil); err == nil {
		t.Error("ts + string must fail")
	}
	// int + ts commutes.
	v, err := (&BinOp{Op: "+", Left: &Const{Value: types.NewInt(int64(time.Second))}, Right: ts}).Eval(ctx, nil)
	if err != nil || v.Time().Unix() != 1 {
		t.Errorf("int+ts = %v, %v", v, err)
	}
}

func TestWalkExprAndPartitionPure(t *testing.T) {
	e := &BinOp{Op: "AND",
		Left:  &BetweenExpr{Child: &ColRef{Index: 0}, Lo: &Const{Value: types.NewInt(1)}, Hi: &Const{Value: types.NewInt(2)}},
		Right: &Func{Name: "abs", Args: []Expr{&Neg{Child: &ColRef{Index: 1}}}},
	}
	n := 0
	WalkExpr(e, func(Expr) bool { n++; return true })
	if n != 8 {
		t.Errorf("walk visited %d nodes, want 8", n)
	}
	if !IsPartitionPure(e) {
		t.Error("pure expr misclassified")
	}
	if IsPartitionPure(&BinOp{Op: "=", Left: &ColRef{Index: 0}, Right: &OuterRef{Up: 1}}) {
		t.Error("outer ref must not be partition-pure")
	}
	if IsPartitionPure(&Subplan{}) {
		t.Error("subplan must not be partition-pure")
	}
	// Early-exit visitor.
	n = 0
	WalkExpr(e, func(Expr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early exit visited %d", n)
	}
}

func TestMaterialRefSharing(t *testing.T) {
	opens := 0
	src := NewSource("s", schema2("a", "b"), func(emit func(types.Row) bool) {
		opens++
		emit(intRow(1, 2))
		emit(intRow(3, 4))
	})
	state := NewMatState(src)
	r1 := &MaterialRef{State: state, Out: schema2("a", "b")}
	r2 := &MaterialRef{State: state, Out: schema2("a", "b")}
	ctx := NewCtx(time.Now())
	rows1, err := Collect(ctx, r1)
	if err != nil || len(rows1) != 2 {
		t.Fatal(err, rows1)
	}
	rows2, err := Collect(ctx, r2)
	if err != nil || len(rows2) != 2 {
		t.Fatal(err, rows2)
	}
	if opens != 1 {
		t.Errorf("shared material executed %d times, want 1", opens)
	}
	state.Reset()
	Collect(ctx, r1)
	if opens != 2 {
		t.Errorf("after Reset, executions = %d, want 2", opens)
	}
	if r1.Schema().Len() != 2 {
		t.Error("schema lost")
	}
}

func TestConcatOperator(t *testing.T) {
	ctx := NewCtx(time.Now())
	a := NewValues(schema2("x", "y"), []types.Row{intRow(1, 1)})
	b := NewValues(schema2("x", "y"), []types.Row{intRow(2, 2), intRow(3, 3)})
	c := &Concat{Children: []Operator{a, b}, Out: schema2("x", "y")}
	rows, err := Collect(ctx, c)
	if err != nil || len(rows) != 3 {
		t.Fatal(err, rows)
	}
	if rows[0][0].Int() != 1 || rows[2][0].Int() != 3 {
		t.Errorf("order = %v", rows)
	}
	// Empty concat.
	empty := &Concat{Out: schema2("x", "y")}
	if err := empty.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Next(ctx); err != io.EOF {
		t.Error("empty concat should EOF")
	}
	empty.Close()
}

func TestLikeEdgeCases(t *testing.T) {
	ctx := NewCtx(time.Now())
	eval := func(s, p string) types.Datum {
		v, err := (&BinOp{Op: "LIKE", Left: &Const{Value: types.NewString(s)}, Right: &Const{Value: types.NewString(p)}}).Eval(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !eval("", "").Bool() {
		t.Error("empty LIKE empty")
	}
	if eval("a", "").Bool() {
		t.Error("'a' LIKE '' must be false")
	}
	if !eval("abc", "a_c").Bool() {
		t.Error("underscore")
	}
	if _, err := (&BinOp{Op: "LIKE", Left: &Const{Value: types.NewInt(1)}, Right: &Const{Value: types.NewString("%")}}).Eval(ctx, nil); err == nil {
		t.Error("LIKE over int must fail")
	}
}

func TestConcatOperatorStringAndArith(t *testing.T) {
	ctx := NewCtx(time.Now())
	v, err := (&BinOp{Op: "||", Left: &Const{Value: types.NewString("a")}, Right: &Const{Value: types.NewInt(1)}}).Eval(ctx, nil)
	if err != nil || v.Str() != "a1" {
		t.Errorf("|| = %v, %v", v, err)
	}
	// String + string works as concat.
	v, err = (&BinOp{Op: "+", Left: &Const{Value: types.NewString("a")}, Right: &Const{Value: types.NewString("b")}}).Eval(ctx, nil)
	if err != nil || v.Str() != "ab" {
		t.Errorf("string + string = %v, %v", v, err)
	}
	// Unknown operator errors.
	if _, err := (&BinOp{Op: "??", Left: &Const{Value: types.NewInt(1)}, Right: &Const{Value: types.NewInt(1)}}).Eval(ctx, nil); err == nil {
		t.Error("unknown op must fail")
	}
}
