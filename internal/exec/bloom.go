package exec

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/types"
)

// Bloom is a fixed-size bloom filter over join-key datums, used for
// sideways information passing: HashJoin builds it from the (small) build
// side's keys and NDP scans probe it DN-side so non-matching probe rows
// never cross the fabric. Keys are normalized exactly like the hash join's
// own key encoding (numerics compare kind-insensitively), so a datum the
// filter rejects provably cannot match any build row.
type Bloom struct {
	bits []uint64
	m    uint64 // bit count
	k    int    // hash functions
}

// bloomBitsPerKey sizes the filter: 10 bits/key with k=4 gives a ~1-2%
// false-positive rate, plenty for a semi-join hint (false positives only
// cost shipping a row the join drops anyway).
const bloomBitsPerKey = 10

// NewBloom returns a filter sized for n keys (minimum 512 bits so tiny
// build sides still get a usable filter).
func NewBloom(n int) *Bloom {
	m := uint64(n * bloomBitsPerKey)
	if m < 512 {
		m = 512
	}
	m = (m + 63) &^ 63 // round up to whole words
	return &Bloom{bits: make([]uint64, m/64), m: m, k: 4}
}

// bloomEncode normalizes a datum the same way the hash join's keyOf does,
// so bloom membership agrees with join-key equality.
func bloomEncode(v types.Datum) string {
	if v.Kind() == types.KindInt || v.Kind() == types.KindFloat {
		return fmt.Sprintf("n:%g", v.Float())
	}
	return fmt.Sprintf("%d:%s", v.Kind(), v.String())
}

// hashes derives the double-hashing pair (h1, h2) for a datum.
func (b *Bloom) hashes(v types.Datum) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(bloomEncode(v)))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31 | 1 // odd, so successive probes cover the bit space
	return h1, h2
}

// Add inserts one key datum.
func (b *Bloom) Add(v types.Datum) {
	h1, h2 := b.hashes(v)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether v may have been added; false is definitive.
func (b *Bloom) MayContain(v types.Datum) bool {
	h1, h2 := b.hashes(v)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes is the filter's wire size — what shipping it to a DN costs.
func (b *Bloom) SizeBytes() int { return len(b.bits) * 8 }

// BloomHandle is the rendezvous between a HashJoin (producer) and the
// probe-side NDP scan fragments (consumers). The planner wires the same
// handle into both; the join publishes after collecting its build side and
// before opening the probe side, so fragments always observe the filter.
// Access is atomic because fragments run on exchange goroutines.
type BloomHandle struct {
	ptr atomic.Pointer[Bloom]
}

// NewBloomHandle returns an empty handle.
func NewBloomHandle() *BloomHandle { return &BloomHandle{} }

// Set publishes the filter (replacing any previous one on re-open).
func (h *BloomHandle) Set(b *Bloom) { h.ptr.Store(b) }

// Get returns the current filter, or nil if none has been published.
func (h *BloomHandle) Get() *Bloom {
	if h == nil {
		return nil
	}
	return h.ptr.Load()
}
