package exec

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

func row(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

// TestPartitionerRoundTrip routes rows from several sources into several
// partitions and checks every row arrives exactly once, in source order
// within each partition.
func TestPartitionerRoundTrip(t *testing.T) {
	const nSrc, nPart, perSrc = 3, 4, 50
	p := NewPartitioner(nSrc, nPart, 8, 2, nil)

	var wg sync.WaitGroup
	for s := 0; s < nSrc; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := p.Writer(s)
			for i := 0; i < perSrc; i++ {
				v := int64(s*perSrc + i)
				if err := w.Write(int(v)%nPart, row(v, int64(s))); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
			if err := w.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}(s)
	}

	got := make([][]types.Row, nPart)
	var dwg sync.WaitGroup
	for part := 0; part < nPart; part++ {
		dwg.Add(1)
		go func(part int) {
			defer dwg.Done()
			err := p.Drain(part, func(rows []types.Row) error {
				got[part] = append(got[part], rows...)
				return nil
			})
			if err != nil {
				t.Errorf("drain(%d): %v", part, err)
			}
		}(part)
	}
	wg.Wait()
	dwg.Wait()

	total := 0
	for part := 0; part < nPart; part++ {
		lastPerSrc := map[int64]int64{}
		for _, r := range got[part] {
			v, src := r[0].Int(), r[1].Int()
			if int(v)%nPart != part {
				t.Errorf("row %d landed in partition %d", v, part)
			}
			if last, ok := lastPerSrc[src]; ok && v <= last {
				t.Errorf("partition %d: source %d out of order (%d after %d)", part, src, v, last)
			}
			lastPerSrc[src] = v
			total++
		}
	}
	if total != nSrc*perSrc {
		t.Errorf("total rows = %d, want %d", total, nSrc*perSrc)
	}
}

// TestPartitionerBackpressure checks a writer blocks on a full queue until
// the consumer drains, rather than buffering unboundedly.
func TestPartitionerBackpressure(t *testing.T) {
	// 1 source, 1 partition, 1-row batches, queue of 1: the third write
	// must block until the drain starts.
	p := NewPartitioner(1, 1, 1, 1, nil)
	wrote := make(chan int, 16)
	go func() {
		w := p.Writer(0)
		for i := 0; i < 8; i++ {
			if err := w.Write(0, row(int64(i))); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			wrote <- i
		}
		w.Close()
		close(wrote)
	}()

	time.Sleep(20 * time.Millisecond)
	blocked := len(wrote)
	if blocked >= 8 {
		t.Fatalf("writer never blocked (wrote all %d rows with queue cap 1)", blocked)
	}

	n := 0
	if err := p.Drain(0, func(rows []types.Row) error { n += len(rows); return nil }); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n != 8 {
		t.Errorf("drained %d rows, want 8", n)
	}
}

// TestPartitionerCancelUnblocks checks Cancel releases both blocked
// writers and blocked drainers with ErrPartitionerCanceled.
func TestPartitionerCancelUnblocks(t *testing.T) {
	p := NewPartitioner(1, 1, 1, 1, nil)

	werr := make(chan error, 1)
	go func() {
		w := p.Writer(0)
		var err error
		for i := 0; err == nil && i < 100; i++ {
			err = w.Write(0, row(int64(i)))
		}
		w.Close()
		werr <- err
	}()

	derr := make(chan error, 1)
	go func() {
		derr <- p.Drain(0, func(rows []types.Row) error {
			p.Cancel() // consumer bails after the first batch
			return p.Drain(0, func([]types.Row) error { return nil })
		})
	}()

	for _, ch := range []chan error{werr, derr} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrPartitionerCanceled) {
				t.Errorf("err = %v, want ErrPartitionerCanceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancel did not unblock")
		}
	}
}

// TestPartitionerOnBatchError checks a failing batch hook (the wire-charge
// seam — where injected transport faults surface) fails the writer.
func TestPartitionerOnBatchError(t *testing.T) {
	boom := errors.New("link dropped")
	p := NewPartitioner(1, 2, 4, 2, func(src, part int, rows []types.Row) error {
		if part == 1 {
			return boom
		}
		return nil
	})
	w := p.Writer(0)
	var got error
	for i := 0; i < 20 && got == nil; i++ {
		got = w.Write(i%2, row(int64(i)))
	}
	w.Close()
	if !errors.Is(got, boom) {
		t.Errorf("write error = %v, want the hook's error", got)
	}
}

// errAfter yields n rows then fails.
type errAfter struct {
	schema *types.Schema
	n, i   int
	err    error
}

func (e *errAfter) Schema() *types.Schema { return e.schema }
func (e *errAfter) Open(*Ctx) error       { e.i = 0; return nil }
func (e *errAfter) Close() error          { return nil }
func (e *errAfter) Next(*Ctx) (types.Row, error) {
	if e.i >= e.n {
		return nil, e.err
	}
	e.i++
	return row(int64(e.i)), nil
}

// TestHashJoinBuildErrorBeforeBloom checks a failing build side propagates
// its error from Open without publishing the sideways bloom filter — probe
// fragments must never act on a filter built from a partial build.
func TestHashJoinBuildErrorBeforeBloom(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	boom := errors.New("build scan failed")
	h := NewBloomHandle()
	j := &HashJoin{
		Type:      InnerJoin,
		Left:      &errAfter{schema: schema, n: 0, err: io.EOF},
		Right:     &errAfter{schema: schema, n: 5, err: boom},
		LeftKeys:  []Expr{&ColRef{Index: 0, Name: "k"}},
		RightKeys: []Expr{&ColRef{Index: 0, Name: "k"}},
		Bloom:     h,
	}
	err := j.Open(NewCtx(time.Unix(0, 0)))
	if !errors.Is(err, boom) {
		t.Fatalf("Open error = %v, want the build error", err)
	}
	if h.Get() != nil {
		t.Error("bloom filter published despite failed build")
	}
}

// TestHashJoinStreamingBuild sanity-checks the streaming build path still
// joins correctly and publishes a bloom covering exactly the build keys.
func TestHashJoinStreamingBuild(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	mkSrc := func(vals ...int64) Operator {
		return NewSource("src", schema, func(emit func(types.Row) bool) {
			for _, v := range vals {
				if !emit(row(v)) {
					return
				}
			}
		})
	}
	h := NewBloomHandle()
	j := &HashJoin{
		Type:      InnerJoin,
		Left:      mkSrc(1, 2, 3, 4),
		Right:     mkSrc(2, 4, 6),
		LeftKeys:  []Expr{&ColRef{Index: 0, Name: "k"}},
		RightKeys: []Expr{&ColRef{Index: 0, Name: "k"}},
		Bloom:     h,
	}
	rows, err := Collect(NewCtx(time.Unix(0, 0)), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 matches", rows)
	}
	bf := h.Get()
	if bf == nil {
		t.Fatal("no bloom published")
	}
	for _, v := range []int64{2, 4, 6} {
		if !bf.MayContain(types.NewInt(v)) {
			t.Errorf("bloom missing build key %d", v)
		}
	}
}
