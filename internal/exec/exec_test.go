package exec

import (
	"io"
	"testing"
	"time"

	"repro/internal/types"
)

func intRow(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func schema2(a, b string) *types.Schema {
	return types.NewSchema(types.Column{Name: a, Kind: types.KindInt}, types.Column{Name: b, Kind: types.KindInt})
}

func collect(t *testing.T, op Operator) []types.Row {
	t.Helper()
	rows, err := Collect(NewCtx(time.Unix(1000, 0)), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestConstAndColRef(t *testing.T) {
	ctx := NewCtx(time.Now())
	row := intRow(10, 20)
	v, err := (&Const{Value: types.NewInt(5)}).Eval(ctx, row)
	if err != nil || v.Int() != 5 {
		t.Fatal(err, v)
	}
	v, err = (&ColRef{Index: 1}).Eval(ctx, row)
	if err != nil || v.Int() != 20 {
		t.Fatal(err, v)
	}
	if _, err := (&ColRef{Index: 5}).Eval(ctx, row); err == nil {
		t.Error("out-of-range colref must fail")
	}
}

func TestBinOpComparisons(t *testing.T) {
	ctx := NewCtx(time.Now())
	mk := func(op string, l, r int64) bool {
		e := &BinOp{Op: op, Left: &Const{Value: types.NewInt(l)}, Right: &Const{Value: types.NewInt(r)}}
		v, err := e.Eval(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v.Bool()
	}
	if !mk("=", 3, 3) || mk("=", 3, 4) || !mk("<", 1, 2) || !mk(">=", 2, 2) || !mk("<>", 1, 2) {
		t.Error("comparison table broken")
	}
}

func TestArithmetic(t *testing.T) {
	ctx := NewCtx(time.Now())
	eval := func(op string, l, r types.Datum) types.Datum {
		v, err := (&BinOp{Op: op, Left: &Const{Value: l}, Right: &Const{Value: r}}).Eval(ctx, nil)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return v
	}
	if v := eval("+", types.NewInt(2), types.NewInt(3)); v.Int() != 5 {
		t.Error("int add")
	}
	if v := eval("/", types.NewInt(7), types.NewInt(2)); v.Int() != 3 {
		t.Error("int div truncates")
	}
	if v := eval("/", types.NewFloat(7), types.NewInt(2)); v.Float() != 3.5 {
		t.Error("mixed div is float")
	}
	if v := eval("%", types.NewInt(7), types.NewInt(3)); v.Int() != 1 {
		t.Error("mod")
	}
	// Division by zero errors.
	if _, err := (&BinOp{Op: "/", Left: &Const{Value: types.NewInt(1)}, Right: &Const{Value: types.NewInt(0)}}).Eval(ctx, nil); err == nil {
		t.Error("div by zero must error")
	}
}

func TestTimestampArithmetic(t *testing.T) {
	ctx := NewCtx(time.Now())
	t0 := time.Unix(100, 0)
	t1 := time.Unix(160, 0)
	diff, err := (&BinOp{Op: "-", Left: &Const{Value: types.NewTime(t1)}, Right: &Const{Value: types.NewTime(t0)}}).Eval(ctx, nil)
	if err != nil || diff.Int() != int64(60*time.Second) {
		t.Fatalf("ts-ts = %v, %v", diff, err)
	}
	plus, err := (&BinOp{Op: "+", Left: &Const{Value: types.NewTime(t0)}, Right: &Const{Value: types.NewInt(int64(time.Minute))}}).Eval(ctx, nil)
	if err != nil || !plus.Time().Equal(t0.Add(time.Minute)) {
		t.Fatalf("ts+int = %v, %v", plus, err)
	}
}

func TestTernaryLogic(t *testing.T) {
	ctx := NewCtx(time.Now())
	null := &Const{Value: types.Null}
	tru := &Const{Value: types.NewBool(true)}
	fls := &Const{Value: types.NewBool(false)}

	v, _ := (&BinOp{Op: "AND", Left: fls, Right: null}).Eval(ctx, nil)
	if v.IsNull() || v.Bool() {
		t.Error("false AND NULL = false")
	}
	v, _ = (&BinOp{Op: "AND", Left: tru, Right: null}).Eval(ctx, nil)
	if !v.IsNull() {
		t.Error("true AND NULL = NULL")
	}
	v, _ = (&BinOp{Op: "OR", Left: tru, Right: null}).Eval(ctx, nil)
	if v.IsNull() || !v.Bool() {
		t.Error("true OR NULL = true")
	}
	v, _ = (&BinOp{Op: "OR", Left: fls, Right: null}).Eval(ctx, nil)
	if !v.IsNull() {
		t.Error("false OR NULL = NULL")
	}
	v, _ = (&BinOp{Op: "=", Left: null, Right: null}).Eval(ctx, nil)
	if !v.IsNull() {
		t.Error("NULL = NULL is NULL")
	}
	v, _ = (&Not{Child: null}).Eval(ctx, nil)
	if !v.IsNull() {
		t.Error("NOT NULL is NULL")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_y%", false},
		{"", "%", true},
		{"abc", "%%c", true},
		{"abc", "_", false},
	}
	ctx := NewCtx(time.Now())
	for _, c := range cases {
		e := &BinOp{Op: "LIKE", Left: &Const{Value: types.NewString(c.s)}, Right: &Const{Value: types.NewString(c.p)}}
		v, err := e.Eval(ctx, nil)
		if err != nil || v.Bool() != c.want {
			t.Errorf("LIKE(%q, %q) = %v, %v; want %v", c.s, c.p, v, err, c.want)
		}
	}
}

func TestInListAndBetween(t *testing.T) {
	ctx := NewCtx(time.Now())
	in := &InListExpr{
		Child: &Const{Value: types.NewInt(2)},
		List:  []Expr{&Const{Value: types.NewInt(1)}, &Const{Value: types.NewInt(2)}},
	}
	v, _ := in.Eval(ctx, nil)
	if !v.Bool() {
		t.Error("2 IN (1,2)")
	}
	in.Child = &Const{Value: types.NewInt(9)}
	v, _ = in.Eval(ctx, nil)
	if v.Bool() {
		t.Error("9 IN (1,2) must be false")
	}
	// NOT IN with NULL in list is NULL when no match.
	in.Not = true
	in.List = append(in.List, &Const{Value: types.Null})
	v, _ = in.Eval(ctx, nil)
	if !v.IsNull() {
		t.Error("9 NOT IN (1,2,NULL) is NULL")
	}
	btw := &BetweenExpr{
		Child: &Const{Value: types.NewInt(5)},
		Lo:    &Const{Value: types.NewInt(1)},
		Hi:    &Const{Value: types.NewInt(10)},
	}
	v, _ = btw.Eval(ctx, nil)
	if !v.Bool() {
		t.Error("5 BETWEEN 1 AND 10")
	}
}

func TestFunctions(t *testing.T) {
	ctx := NewCtx(time.Unix(42, 0))
	eval := func(name string, args ...Expr) types.Datum {
		v, err := (&Func{Name: name, Args: args}).Eval(ctx, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	if v := eval("now"); !v.Time().Equal(time.Unix(42, 0)) {
		t.Error("now() should use ctx clock")
	}
	if v := eval("abs", &Const{Value: types.NewInt(-7)}); v.Int() != 7 {
		t.Error("abs")
	}
	if v := eval("upper", &Const{Value: types.NewString("ab")}); v.Str() != "AB" {
		t.Error("upper")
	}
	if v := eval("length", &Const{Value: types.NewString("abc")}); v.Int() != 3 {
		t.Error("length")
	}
	if v := eval("coalesce", &Const{Value: types.Null}, &Const{Value: types.NewInt(4)}); v.Int() != 4 {
		t.Error("coalesce")
	}
	if v := eval("floor", &Const{Value: types.NewFloat(2.7)}); v.Int() != 2 {
		t.Error("floor")
	}
	if v := eval("ceil", &Const{Value: types.NewFloat(2.1)}); v.Int() != 3 {
		t.Error("ceil")
	}
	if v := eval("greatest", &Const{Value: types.NewInt(1)}, &Const{Value: types.NewInt(9)}); v.Int() != 9 {
		t.Error("greatest")
	}
	if v := eval("nullif", &Const{Value: types.NewInt(3)}, &Const{Value: types.NewInt(3)}); !v.IsNull() {
		t.Error("nullif equal -> NULL")
	}
	if _, err := (&Func{Name: "frobnicate"}).Eval(ctx, nil); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestFilterProject(t *testing.T) {
	src := NewValues(schema2("a", "b"), []types.Row{intRow(1, 10), intRow(2, 20), intRow(3, 30)})
	f := &Filter{Child: src, Pred: &BinOp{Op: ">", Left: &ColRef{Index: 0}, Right: &Const{Value: types.NewInt(1)}}}
	p := &Project{
		Child: f,
		Exprs: []Expr{&BinOp{Op: "+", Left: &ColRef{Index: 0}, Right: &ColRef{Index: 1}}},
		Out:   types.NewSchema(types.Column{Name: "s", Kind: types.KindInt}),
	}
	rows := collect(t, p)
	if len(rows) != 2 || rows[0][0].Int() != 22 || rows[1][0].Int() != 33 {
		t.Errorf("rows = %v", rows)
	}
}

func TestHashJoinInner(t *testing.T) {
	left := NewValues(schema2("a", "b"), []types.Row{intRow(1, 10), intRow(2, 20), intRow(3, 30)})
	right := NewValues(schema2("c", "d"), []types.Row{intRow(2, 200), intRow(3, 300), intRow(3, 301), intRow(9, 900)})
	j := &HashJoin{
		Type: InnerJoin, Left: left, Right: right,
		LeftKeys:  []Expr{&ColRef{Index: 0}},
		RightKeys: []Expr{&ColRef{Index: 0}},
	}
	rows := collect(t, j)
	if len(rows) != 3 {
		t.Fatalf("join rows = %d: %v", len(rows), rows)
	}
	for _, r := range rows {
		if r[0].Int() != r[2].Int() {
			t.Errorf("join key mismatch: %v", r)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	left := NewValues(schema2("a", "b"), []types.Row{intRow(1, 10), intRow(2, 20)})
	right := NewValues(schema2("c", "d"), []types.Row{intRow(2, 200)})
	j := &HashJoin{
		Type: LeftJoin, Left: left, Right: right,
		LeftKeys:  []Expr{&ColRef{Index: 0}},
		RightKeys: []Expr{&ColRef{Index: 0}},
	}
	rows := collect(t, j)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	var unmatched types.Row
	for _, r := range rows {
		if r[0].Int() == 1 {
			unmatched = r
		}
	}
	if unmatched == nil || !unmatched[2].IsNull() || !unmatched[3].IsNull() {
		t.Errorf("left outer null-extension broken: %v", unmatched)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := NewValues(schema2("a", "b"), []types.Row{{types.Null, types.NewInt(1)}})
	right := NewValues(schema2("c", "d"), []types.Row{{types.Null, types.NewInt(2)}})
	j := &HashJoin{
		Type: InnerJoin, Left: left, Right: right,
		LeftKeys:  []Expr{&ColRef{Index: 0}},
		RightKeys: []Expr{&ColRef{Index: 0}},
	}
	if rows := collect(t, j); len(rows) != 0 {
		t.Errorf("NULL keys must not join: %v", rows)
	}
}

func TestNestedLoopCrossAndNonEqui(t *testing.T) {
	left := NewValues(schema2("a", "b"), []types.Row{intRow(1, 0), intRow(5, 0)})
	right := NewValues(schema2("c", "d"), []types.Row{intRow(3, 0), intRow(4, 0)})
	cross := &NestedLoopJoin{Type: CrossJoin, Left: left, Right: right}
	if rows := collect(t, cross); len(rows) != 4 {
		t.Errorf("cross join rows = %d", len(rows))
	}
	left2 := NewValues(schema2("a", "b"), []types.Row{intRow(1, 0), intRow(5, 0)})
	right2 := NewValues(schema2("c", "d"), []types.Row{intRow(3, 0), intRow(4, 0)})
	nl := &NestedLoopJoin{
		Type: InnerJoin, Left: left2, Right: right2,
		On: &BinOp{Op: "<", Left: &ColRef{Index: 0}, Right: &ColRef{Index: 2}},
	}
	rows := collect(t, nl)
	if len(rows) != 2 { // 1<3, 1<4
		t.Errorf("non-equi join rows = %v", rows)
	}
}

func TestAggGrouped(t *testing.T) {
	src := NewValues(schema2("g", "v"), []types.Row{
		intRow(1, 10), intRow(1, 20), intRow(2, 5), {types.NewInt(2), types.Null},
	})
	out := types.NewSchema(
		types.Column{Name: "g", Kind: types.KindInt},
		types.Column{Name: "cnt", Kind: types.KindInt},
		types.Column{Name: "sum", Kind: types.KindInt},
		types.Column{Name: "avg", Kind: types.KindFloat},
		types.Column{Name: "min", Kind: types.KindInt},
		types.Column{Name: "max", Kind: types.KindInt},
	)
	a := &Agg{
		Child:   src,
		GroupBy: []Expr{&ColRef{Index: 0}},
		Aggs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggSum, Arg: &ColRef{Index: 1}},
			{Kind: AggAvg, Arg: &ColRef{Index: 1}},
			{Kind: AggMin, Arg: &ColRef{Index: 1}},
			{Kind: AggMax, Arg: &ColRef{Index: 1}},
		},
		Out: out,
	}
	rows := collect(t, a)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	byG := map[int64]types.Row{}
	for _, r := range rows {
		byG[r[0].Int()] = r
	}
	g1 := byG[1]
	if g1[1].Int() != 2 || g1[2].Int() != 30 || g1[3].Float() != 15 || g1[4].Int() != 10 || g1[5].Int() != 20 {
		t.Errorf("group 1 = %v", g1)
	}
	g2 := byG[2]
	// count(*) counts the NULL row; sum/min/max skip it.
	if g2[1].Int() != 2 || g2[2].Int() != 5 || g2[4].Int() != 5 {
		t.Errorf("group 2 = %v", g2)
	}
}

func TestAggNoGroupsEmptyInput(t *testing.T) {
	src := NewValues(schema2("g", "v"), nil)
	a := &Agg{
		Child: src,
		Aggs:  []AggSpec{{Kind: AggCountStar}, {Kind: AggSum, Arg: &ColRef{Index: 1}}},
		Out:   schema2("cnt", "sum"),
	}
	rows := collect(t, a)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty agg = %v", rows[0])
	}
	// Grouped agg over empty input emits nothing.
	src2 := NewValues(schema2("g", "v"), nil)
	a2 := &Agg{Child: src2, GroupBy: []Expr{&ColRef{Index: 0}}, Aggs: []AggSpec{{Kind: AggCountStar}}, Out: schema2("g", "cnt")}
	if rows := collect(t, a2); len(rows) != 0 {
		t.Errorf("grouped empty agg = %v", rows)
	}
}

func TestAggDistinct(t *testing.T) {
	src := NewValues(schema2("g", "v"), []types.Row{intRow(1, 5), intRow(1, 5), intRow(1, 7)})
	a := &Agg{
		Child: src,
		Aggs:  []AggSpec{{Kind: AggCount, Arg: &ColRef{Index: 1}, Distinct: true}, {Kind: AggSum, Arg: &ColRef{Index: 1}, Distinct: true}},
		Out:   schema2("cnt", "sum"),
	}
	rows := collect(t, a)
	if rows[0][0].Int() != 2 || rows[0][1].Int() != 12 {
		t.Errorf("distinct agg = %v", rows[0])
	}
}

func TestSortLimitDistinct(t *testing.T) {
	src := NewValues(schema2("a", "b"), []types.Row{intRow(3, 1), intRow(1, 2), intRow(2, 3), intRow(1, 4)})
	s := &Sort{Child: src, Keys: []SortKey{{Expr: &ColRef{Index: 0}}, {Expr: &ColRef{Index: 1}, Desc: true}}}
	rows := collect(t, s)
	want := [][2]int64{{1, 4}, {1, 2}, {2, 3}, {3, 1}}
	for i, w := range want {
		if rows[i][0].Int() != w[0] || rows[i][1].Int() != w[1] {
			t.Fatalf("sorted[%d] = %v, want %v", i, rows[i], w)
		}
	}
	src2 := NewValues(schema2("a", "b"), []types.Row{intRow(1, 1), intRow(2, 2), intRow(3, 3), intRow(4, 4)})
	l := &Limit{Child: src2, Count: 2, Offset: 1}
	rows = collect(t, l)
	if len(rows) != 2 || rows[0][0].Int() != 2 || rows[1][0].Int() != 3 {
		t.Errorf("limit rows = %v", rows)
	}
	src3 := NewValues(schema2("a", "b"), []types.Row{intRow(1, 1), intRow(1, 1), intRow(2, 2)})
	d := &Distinct{Child: src3}
	if rows := collect(t, d); len(rows) != 2 {
		t.Errorf("distinct rows = %v", rows)
	}
}

func TestSubplanScalar(t *testing.T) {
	ctx := NewCtx(time.Now())
	sub := &Subplan{
		Plan: NewValues(types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}), []types.Row{intRow(42)}),
		Mode: SubplanScalar,
	}
	v, err := sub.Eval(ctx, nil)
	if err != nil || v.Int() != 42 {
		t.Fatal(err, v)
	}
	// Zero rows -> NULL.
	sub2 := &Subplan{Plan: NewValues(schema2("x", "y").Project([]int{0}), nil), Mode: SubplanScalar}
	v, err = sub2.Eval(ctx, nil)
	if err != nil || !v.IsNull() {
		t.Fatal("empty scalar subquery should be NULL", err, v)
	}
	// Two rows -> error.
	sub3 := &Subplan{
		Plan: NewValues(types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}), []types.Row{intRow(1), intRow(2)}),
		Mode: SubplanScalar,
	}
	if _, err := sub3.Eval(ctx, nil); err == nil {
		t.Error("multi-row scalar subquery must error")
	}
}

func TestSubplanCorrelatedOuterRef(t *testing.T) {
	// Subplan filters an inner table by the outer row's value: for outer
	// row (k), returns k*10 from the inner Values.
	inner := NewValues(schema2("k", "v"), []types.Row{intRow(1, 10), intRow(2, 20), intRow(3, 30)})
	subPlan := &Project{
		Child: &Filter{
			Child: inner,
			Pred:  &BinOp{Op: "=", Left: &ColRef{Index: 0}, Right: &OuterRef{Up: 1, Index: 0}},
		},
		Exprs: []Expr{&ColRef{Index: 1}},
		Out:   types.NewSchema(types.Column{Name: "v", Kind: types.KindInt}),
	}
	sub := &Subplan{Plan: subPlan, Mode: SubplanScalar, Correlated: true}

	ctx := NewCtx(time.Now())
	for k := int64(1); k <= 3; k++ {
		v, err := sub.Eval(ctx, intRow(k))
		if err != nil || v.Int() != k*10 {
			t.Fatalf("correlated subquery for k=%d: %v, %v", k, v, err)
		}
	}
	if len(ctx.OuterRows) != 0 {
		t.Error("outer row stack leaked")
	}
}

func TestSubplanInAny(t *testing.T) {
	ctx := NewCtx(time.Now())
	sub := &Subplan{
		Plan:   NewValues(types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}), []types.Row{intRow(1), intRow(2)}),
		Mode:   SubplanInAny,
		Needle: &Const{Value: types.NewInt(2)},
	}
	v, err := sub.Eval(ctx, nil)
	if err != nil || !v.Bool() {
		t.Fatal("2 IN (1,2) via subplan", err, v)
	}
}

func TestUncorrelatedSubplanCaches(t *testing.T) {
	opens := 0
	src := NewSource("s", types.NewSchema(types.Column{Name: "x", Kind: types.KindInt}), func(emit func(types.Row) bool) {
		opens++
		emit(intRow(7))
	})
	sub := &Subplan{Plan: src, Mode: SubplanScalar, Correlated: false}
	ctx := NewCtx(time.Now())
	for i := 0; i < 5; i++ {
		if v, err := sub.Eval(ctx, nil); err != nil || v.Int() != 7 {
			t.Fatal(err, v)
		}
	}
	if opens != 1 {
		t.Errorf("uncorrelated subplan executed %d times, want 1", opens)
	}
}

func TestCountedTracksRows(t *testing.T) {
	src := NewValues(schema2("a", "b"), []types.Row{intRow(1, 1), intRow(2, 2), intRow(3, 3)})
	c := &Counted{Child: src, StepText: "SCAN(T)", EstimatedRows: 100}
	rows := collect(t, c)
	if len(rows) != 3 || c.ActualRows != 3 {
		t.Errorf("counted = %d, rows = %d", c.ActualRows, len(rows))
	}
	// Re-open resets.
	rows = collect(t, c)
	if c.ActualRows != 3 {
		t.Errorf("after reopen counted = %d", c.ActualRows)
	}
	found := 0
	WalkCounted(&Filter{Child: c, Pred: &Const{Value: types.NewBool(true)}}, func(*Counted) { found++ })
	if found != 1 {
		t.Errorf("WalkCounted found %d", found)
	}
}

func TestCaseWhen(t *testing.T) {
	ctx := NewCtx(time.Now())
	searched := &CaseWhen{
		Whens: []Expr{&BinOp{Op: ">", Left: &ColRef{Index: 0}, Right: &Const{Value: types.NewInt(5)}}},
		Thens: []Expr{&Const{Value: types.NewString("big")}},
		Else:  &Const{Value: types.NewString("small")},
	}
	v, _ := searched.Eval(ctx, intRow(10))
	if v.Str() != "big" {
		t.Error("searched case")
	}
	v, _ = searched.Eval(ctx, intRow(1))
	if v.Str() != "small" {
		t.Error("searched case else")
	}
	operand := &CaseWhen{
		Operand: &ColRef{Index: 0},
		Whens:   []Expr{&Const{Value: types.NewInt(1)}},
		Thens:   []Expr{&Const{Value: types.NewString("one")}},
	}
	v, _ = operand.Eval(ctx, intRow(2))
	if !v.IsNull() {
		t.Error("operand case no-match without else is NULL")
	}
}

func TestSourceReopens(t *testing.T) {
	calls := 0
	s := NewSource("s", schema2("a", "b"), func(emit func(types.Row) bool) {
		calls++
		emit(intRow(int64(calls), 0))
	})
	ctx := NewCtx(time.Now())
	for i := 1; i <= 3; i++ {
		if err := s.Open(ctx); err != nil {
			t.Fatal(err)
		}
		r, err := s.Next(ctx)
		if err != nil || r[0].Int() != int64(i) {
			t.Fatalf("reopen %d: %v %v", i, r, err)
		}
		if _, err := s.Next(ctx); err != io.EOF {
			t.Fatal("want EOF")
		}
		s.Close()
	}
}
