package exec

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/types"
)

// lcgRows builds a deterministic pseudo-random row set (a, b) with plenty
// of duplicate keys, so TopN tie-breaking is actually exercised.
func lcgRows(n int) []types.Row {
	rows := make([]types.Row, n)
	x := int64(12345)
	for i := range rows {
		x = (x*1103515245 + 12347) % (1 << 31)
		rows[i] = intRow(x%17, int64(i)) // a in [0,17): heavy ties; b unique
	}
	return rows
}

// sortLimit is the reference plan TopN replaces: stable Sort then Limit.
func sortLimit(t *testing.T, rows []types.Row, keys []SortKey, limit int64) []types.Row {
	t.Helper()
	return collect(t, &Limit{
		Child: &Sort{Child: NewValues(schema2("a", "b"), rows), Keys: keys},
		Count: limit,
	})
}

func rowsEqual(t *testing.T, label string, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestTopNMatchesSortLimit: the bounded-heap operator must be
// byte-identical to the stable Sort+Limit plan it replaces, including
// tie-breaking (first-arrived wins), for every limit around the data size.
func TestTopNMatchesSortLimit(t *testing.T) {
	rows := lcgRows(200)
	keyCases := [][]SortKey{
		{{Expr: &ColRef{Index: 0}}},
		{{Expr: &ColRef{Index: 0}, Desc: true}},
		{{Expr: &ColRef{Index: 0}, Desc: true}, {Expr: &ColRef{Index: 1}}},
	}
	for ki, keys := range keyCases {
		for _, limit := range []int64{0, 1, 7, 50, 199, 200, 500} {
			topn := collect(t, &TopN{Child: NewValues(schema2("a", "b"), rows), Keys: keys, Limit: limit})
			want := sortLimit(t, rows, keys, limit)
			rowsEqual(t, fmt.Sprintf("keys=%d limit=%d", ki, limit), topn, want)
		}
	}
}

// TestTopNBareLimit: with no sort keys the operator degenerates to LIMIT —
// the first K rows in arrival order, and the heap reports Full so a
// streaming caller can stop early.
func TestTopNBareLimit(t *testing.T) {
	rows := lcgRows(40)
	got := collect(t, &TopN{Child: NewValues(schema2("a", "b"), rows), Limit: 5})
	rowsEqual(t, "bare limit", got, rows[:5])

	h := NewTopNHeap(NewCtx(time.Unix(0, 0)), nil, 3)
	for i, r := range rows {
		if h.Full() != (i >= 3) {
			t.Fatalf("Full() = %v after %d pushes", h.Full(), i)
		}
		if err := h.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	sorted, err := h.SortedRows()
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "bare-limit heap", sorted, rows[:3])
}

// TestTopNFragmentMergeDeterministic is the distributed-claim test: split
// one row stream into k fragments (the exchange's ordered concat), run each
// through its own bounded heap, ship survivors in arrival order, and TopN
// the merged stream at the CN. At every split factor the result must be
// byte-identical to TopN over the unsplit stream — this is the invariant
// that lets the DN drop rows without the CN noticing, ties included.
func TestTopNFragmentMergeDeterministic(t *testing.T) {
	all := lcgRows(240)
	keys := []SortKey{{Expr: &ColRef{Index: 0}, Desc: true}} // ties on a galore
	const limit = 10
	ctx := NewCtx(time.Unix(0, 0))
	want := collect(t, &TopN{Child: NewValues(schema2("a", "b"), all), Keys: keys, Limit: limit})

	for _, frags := range []int{1, 2, 4, 16} {
		per := len(all) / frags
		var shipped []types.Row
		for f := 0; f < frags; f++ {
			h := NewTopNHeap(ctx, keys, limit)
			for _, r := range all[f*per : (f+1)*per] {
				if err := h.Push(r); err != nil {
					t.Fatal(err)
				}
			}
			part, err := h.ArrivalRows()
			if err != nil {
				t.Fatal(err)
			}
			shipped = append(shipped, part...)
		}
		got := collect(t, &TopN{Child: NewValues(schema2("a", "b"), shipped), Keys: keys, Limit: limit})
		rowsEqual(t, fmt.Sprintf("frags=%d", frags), got, want)
		if len(shipped) > frags*limit {
			t.Fatalf("frags=%d shipped %d rows, heap bound is %d", frags, len(shipped), frags*limit)
		}
	}
}
