// Package exec implements the query execution engine of the FI-MPPDB
// reproduction: compiled scalar expressions, row-at-a-time (Volcano)
// operators, and vectorized fast paths over column-store batches
// (paper §II, Fig 1: "vectorized execution engine").
//
// The same operators run on a coordinator node over gathered streams and on
// data nodes over local storage; internal/cluster wires them together.
package exec

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/types"
)

// Ctx carries per-execution state: the session clock and the stack of outer
// rows for correlated subqueries.
type Ctx struct {
	// Now is the statement timestamp returned by now().
	Now time.Time
	// OuterRows is the stack of enclosing rows; the last element is the
	// innermost enclosing scope. Subplan evaluation pushes/pops.
	OuterRows []types.Row
}

// NewCtx returns a Ctx with the statement clock set.
func NewCtx(now time.Time) *Ctx { return &Ctx{Now: now} }

// Expr is a compiled scalar expression.
type Expr interface {
	// Eval computes the expression over row. Comparison and logic follow
	// SQL ternary semantics: NULL operands yield NULL, which conditionals
	// treat as false.
	Eval(ctx *Ctx, row types.Row) (types.Datum, error)
	// String renders a canonical form used by the learning optimizer's
	// step definitions (predicates print with qualified column names).
	String() string
}

// ---------------------------------------------------------------------------
// Leaf expressions
// ---------------------------------------------------------------------------

// Const is a literal.
type Const struct{ Value types.Datum }

// Eval implements Expr.
func (c *Const) Eval(*Ctx, types.Row) (types.Datum, error) { return c.Value, nil }

func (c *Const) String() string {
	if c.Value.Kind() == types.KindString {
		return "'" + c.Value.Str() + "'"
	}
	return c.Value.String()
}

// ColRef reads column Index of the current row. Name is retained for
// canonical display (qualified, upper-cased by the planner when feeding the
// plan store).
type ColRef struct {
	Index int
	Name  string
}

// Eval implements Expr.
func (c *ColRef) Eval(_ *Ctx, row types.Row) (types.Datum, error) {
	if c.Index >= len(row) {
		return types.Null, fmt.Errorf("exec: column index %d out of range (row arity %d)", c.Index, len(row))
	}
	return row[c.Index], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// OuterRef reads a column from an enclosing scope's current row (correlated
// subqueries). Up is the number of scopes to climb (1 = immediate parent).
type OuterRef struct {
	Up    int
	Index int
	Name  string
}

// Eval implements Expr.
func (o *OuterRef) Eval(ctx *Ctx, _ types.Row) (types.Datum, error) {
	n := len(ctx.OuterRows)
	if o.Up <= 0 || o.Up > n {
		return types.Null, fmt.Errorf("exec: outer ref depth %d with %d outer rows", o.Up, n)
	}
	row := ctx.OuterRows[n-o.Up]
	if o.Index >= len(row) {
		return types.Null, fmt.Errorf("exec: outer column index %d out of range", o.Index)
	}
	return row[o.Index], nil
}

func (o *OuterRef) String() string {
	if o.Name != "" {
		return o.Name
	}
	return fmt.Sprintf("outer(%d,$%d)", o.Up, o.Index)
}

// ---------------------------------------------------------------------------
// Composite expressions
// ---------------------------------------------------------------------------

// BinOp is a binary operator. Op values reuse internal/sqlx's operator
// spellings ("=", "<", "+", "AND", "LIKE", "||", ...).
type BinOp struct {
	Op          string
	Left, Right Expr
}

// Eval implements Expr.
func (b *BinOp) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	switch b.Op {
	case "AND":
		return evalAnd(ctx, row, b.Left, b.Right)
	case "OR":
		return evalOr(ctx, row, b.Left, b.Right)
	}
	l, err := b.Left.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.Right.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := types.Compare(l, r)
		if err != nil {
			return types.Null, err
		}
		var v bool
		switch b.Op {
		case "=":
			v = c == 0
		case "<>":
			v = c != 0
		case "<":
			v = c < 0
		case "<=":
			v = c <= 0
		case ">":
			v = c > 0
		case ">=":
			v = c >= 0
		}
		return types.NewBool(v), nil
	case "+", "-", "*", "/", "%":
		return evalArith(b.Op, l, r)
	case "LIKE":
		if l.Kind() != types.KindString || r.Kind() != types.KindString {
			return types.Null, fmt.Errorf("exec: LIKE requires strings, got %s and %s", l.Kind(), r.Kind())
		}
		return types.NewBool(likeMatch(l.Str(), r.Str())), nil
	case "||":
		ls, err := types.Coerce(l, types.KindString)
		if err != nil {
			return types.Null, err
		}
		rs, err := types.Coerce(r, types.KindString)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(ls.Str() + rs.Str()), nil
	default:
		return types.Null, fmt.Errorf("exec: unknown binary operator %q", b.Op)
	}
}

func (b *BinOp) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

func evalAnd(ctx *Ctx, row types.Row, le, re Expr) (types.Datum, error) {
	l, err := le.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	// SQL three-valued logic: false AND x = false even if x is NULL.
	if !l.IsNull() && l.Kind() == types.KindBool && !l.Bool() {
		return types.NewBool(false), nil
	}
	r, err := re.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if !r.IsNull() && r.Kind() == types.KindBool && !r.Bool() {
		return types.NewBool(false), nil
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	return types.NewBool(l.Bool() && r.Bool()), nil
}

func evalOr(ctx *Ctx, row types.Row, le, re Expr) (types.Datum, error) {
	l, err := le.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if !l.IsNull() && l.Kind() == types.KindBool && l.Bool() {
		return types.NewBool(true), nil
	}
	r, err := re.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if !r.IsNull() && r.Kind() == types.KindBool && r.Bool() {
		return types.NewBool(true), nil
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	return types.NewBool(l.Bool() || r.Bool()), nil
}

func evalArith(op string, l, r types.Datum) (types.Datum, error) {
	lk, rk := l.Kind(), r.Kind()
	// Timestamp arithmetic: ts - ts = BIGINT nanos; ts ± BIGINT = ts.
	if lk == types.KindTime || rk == types.KindTime {
		return evalTimeArith(op, l, r)
	}
	bothInt := lk == types.KindInt && rk == types.KindInt
	if bothInt {
		a, b := l.Int(), r.Int()
		switch op {
		case "+":
			return types.NewInt(a + b), nil
		case "-":
			return types.NewInt(a - b), nil
		case "*":
			return types.NewInt(a * b), nil
		case "/":
			if b == 0 {
				return types.Null, errors.New("exec: division by zero")
			}
			return types.NewInt(a / b), nil
		case "%":
			if b == 0 {
				return types.Null, errors.New("exec: division by zero")
			}
			return types.NewInt(a % b), nil
		}
	}
	if (lk == types.KindInt || lk == types.KindFloat) && (rk == types.KindInt || rk == types.KindFloat) {
		a, b := l.Float(), r.Float()
		switch op {
		case "+":
			return types.NewFloat(a + b), nil
		case "-":
			return types.NewFloat(a - b), nil
		case "*":
			return types.NewFloat(a * b), nil
		case "/":
			if b == 0 {
				return types.Null, errors.New("exec: division by zero")
			}
			return types.NewFloat(a / b), nil
		case "%":
			return types.Null, errors.New("exec: %% requires integers")
		}
	}
	if op == "+" && lk == types.KindString && rk == types.KindString {
		return types.NewString(l.Str() + r.Str()), nil
	}
	return types.Null, fmt.Errorf("exec: cannot apply %s to %s and %s", op, lk, rk)
}

func evalTimeArith(op string, l, r types.Datum) (types.Datum, error) {
	switch {
	case l.Kind() == types.KindTime && r.Kind() == types.KindTime && op == "-":
		return types.NewInt(l.Time().UnixNano() - r.Time().UnixNano()), nil
	case l.Kind() == types.KindTime && r.Kind() == types.KindInt:
		switch op {
		case "+":
			return types.NewTime(l.Time().Add(time.Duration(r.Int()))), nil
		case "-":
			return types.NewTime(l.Time().Add(-time.Duration(r.Int()))), nil
		}
	case l.Kind() == types.KindInt && r.Kind() == types.KindTime && op == "+":
		return types.NewTime(r.Time().Add(time.Duration(l.Int()))), nil
	}
	return types.Null, fmt.Errorf("exec: cannot apply %s to %s and %s", op, l.Kind(), r.Kind())
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// Not negates a boolean expression (NULL stays NULL).
type Not struct{ Child Expr }

// Eval implements Expr.
func (n *Not) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	v, err := n.Child.Eval(ctx, row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	if v.Kind() != types.KindBool {
		return types.Null, fmt.Errorf("exec: NOT requires BOOL, got %s", v.Kind())
	}
	return types.NewBool(!v.Bool()), nil
}

func (n *Not) String() string { return "(NOT " + n.Child.String() + ")" }

// Neg is unary minus.
type Neg struct{ Child Expr }

// Eval implements Expr.
func (n *Neg) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	v, err := n.Child.Eval(ctx, row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	switch v.Kind() {
	case types.KindInt:
		return types.NewInt(-v.Int()), nil
	case types.KindFloat:
		return types.NewFloat(-v.Float()), nil
	default:
		return types.Null, fmt.Errorf("exec: cannot negate %s", v.Kind())
	}
}

func (n *Neg) String() string { return "(-" + n.Child.String() + ")" }

// IsNullExpr tests for NULL.
type IsNullExpr struct {
	Child Expr
	Not   bool
}

// Eval implements Expr.
func (e *IsNullExpr) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	v, err := e.Child.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != e.Not), nil
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.Child.String() + " IS NOT NULL)"
	}
	return "(" + e.Child.String() + " IS NULL)"
}

// InListExpr tests membership in a literal list.
type InListExpr struct {
	Child Expr
	List  []Expr
	Not   bool
}

// Eval implements Expr.
func (e *InListExpr) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	v, err := e.Child.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	for _, item := range e.List {
		iv, err := item.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		c, err := types.Compare(v, iv)
		if err != nil {
			return types.Null, err
		}
		if c == 0 {
			return types.NewBool(!e.Not), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(e.Not), nil
}

func (e *InListExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := " IN "
	if e.Not {
		op = " NOT IN "
	}
	return "(" + e.Child.String() + op + "(" + strings.Join(parts, ",") + "))"
}

// BetweenExpr is lo <= x <= hi.
type BetweenExpr struct {
	Child, Lo, Hi Expr
	Not           bool
}

// Eval implements Expr.
func (e *BetweenExpr) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	v, err := e.Child.Eval(ctx, row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	lo, err := e.Lo.Eval(ctx, row)
	if err != nil || lo.IsNull() {
		return types.Null, err
	}
	hi, err := e.Hi.Eval(ctx, row)
	if err != nil || hi.IsNull() {
		return types.Null, err
	}
	cl, err := types.Compare(v, lo)
	if err != nil {
		return types.Null, err
	}
	ch, err := types.Compare(v, hi)
	if err != nil {
		return types.Null, err
	}
	in := cl >= 0 && ch <= 0
	return types.NewBool(in != e.Not), nil
}

func (e *BetweenExpr) String() string {
	op := " BETWEEN "
	if e.Not {
		op = " NOT BETWEEN "
	}
	return "(" + e.Child.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// CaseWhen implements both searched and operand CASE.
type CaseWhen struct {
	Operand Expr // nil for searched form
	Whens   []Expr
	Thens   []Expr
	Else    Expr // nil -> NULL
}

// Eval implements Expr.
func (e *CaseWhen) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	var op types.Datum
	if e.Operand != nil {
		var err error
		op, err = e.Operand.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
	}
	for i, w := range e.Whens {
		wv, err := w.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
		matched := false
		if e.Operand != nil {
			if !wv.IsNull() && !op.IsNull() {
				c, err := types.Compare(op, wv)
				if err != nil {
					return types.Null, err
				}
				matched = c == 0
			}
		} else {
			matched = !wv.IsNull() && wv.Kind() == types.KindBool && wv.Bool()
		}
		if matched {
			return e.Thens[i].Eval(ctx, row)
		}
	}
	if e.Else != nil {
		return e.Else.Eval(ctx, row)
	}
	return types.Null, nil
}

func (e *CaseWhen) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if e.Operand != nil {
		sb.WriteString(" " + e.Operand.String())
	}
	for i := range e.Whens {
		sb.WriteString(" WHEN " + e.Whens[i].String() + " THEN " + e.Thens[i].String())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// Func is a scalar function call. Supported: now, abs, lower, upper,
// length, coalesce, floor, ceil, nullif, greatest, least.
type Func struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (f *Func) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	switch f.Name {
	case "now", "current_timestamp", "statement_timestamp":
		return types.NewTime(ctx.Now), nil
	case "coalesce":
		for _, a := range f.Args {
			v, err := a.Eval(ctx, row)
			if err != nil {
				return types.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return types.Null, nil
	}
	args := make([]types.Datum, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	switch f.Name {
	case "abs":
		if err := arity(f, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		switch args[0].Kind() {
		case types.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return types.NewInt(v), nil
		case types.KindFloat:
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return types.NewFloat(v), nil
		}
		return types.Null, fmt.Errorf("exec: abs of %s", args[0].Kind())
	case "lower", "upper", "length":
		if err := arity(f, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		s, err := types.Coerce(args[0], types.KindString)
		if err != nil {
			return types.Null, err
		}
		switch f.Name {
		case "lower":
			return types.NewString(strings.ToLower(s.Str())), nil
		case "upper":
			return types.NewString(strings.ToUpper(s.Str())), nil
		default:
			return types.NewInt(int64(len(s.Str()))), nil
		}
	case "floor", "ceil":
		if err := arity(f, args, 1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		v := args[0].Float()
		n := int64(v)
		if f.Name == "floor" && float64(n) > v {
			n--
		}
		if f.Name == "ceil" && float64(n) < v {
			n++
		}
		return types.NewInt(n), nil
	case "nullif":
		if err := arity(f, args, 2); err != nil {
			return types.Null, err
		}
		if types.Equal(args[0], args[1]) {
			return types.Null, nil
		}
		return args[0], nil
	case "greatest", "least":
		if len(args) == 0 {
			return types.Null, fmt.Errorf("exec: %s needs arguments", f.Name)
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return types.Null, nil
			}
			c, err := types.Compare(a, best)
			if err != nil {
				return types.Null, err
			}
			if (f.Name == "greatest" && c > 0) || (f.Name == "least" && c < 0) {
				best = a
			}
		}
		return best, nil
	default:
		return types.Null, fmt.Errorf("exec: unknown function %q", f.Name)
	}
}

func arity(f *Func, args []types.Datum, n int) error {
	if len(args) != n {
		return fmt.Errorf("exec: %s expects %d argument(s), got %d", f.Name, n, len(args))
	}
	return nil
}

func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ",") + ")"
}

// WalkExpr visits e and its children in pre-order; the visitor returns
// false to skip a node's children. Subplan operators are visited but not
// descended into.
func WalkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *BinOp:
		WalkExpr(x.Left, visit)
		WalkExpr(x.Right, visit)
	case *Not:
		WalkExpr(x.Child, visit)
	case *Neg:
		WalkExpr(x.Child, visit)
	case *IsNullExpr:
		WalkExpr(x.Child, visit)
	case *InListExpr:
		WalkExpr(x.Child, visit)
		for _, item := range x.List {
			WalkExpr(item, visit)
		}
	case *BetweenExpr:
		WalkExpr(x.Child, visit)
		WalkExpr(x.Lo, visit)
		WalkExpr(x.Hi, visit)
	case *Func:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	case *CaseWhen:
		WalkExpr(x.Operand, visit)
		for i := range x.Whens {
			WalkExpr(x.Whens[i], visit)
			WalkExpr(x.Thens[i], visit)
		}
		WalkExpr(x.Else, visit)
	case *Subplan:
		WalkExpr(x.Needle, visit)
	}
}

// IsPartitionPure reports whether the expression can be evaluated
// independently on any partition's rows: no outer-scope references and no
// subplans (which may carry shared caches or touch other tables).
func IsPartitionPure(e Expr) bool {
	pure := true
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *OuterRef, *Subplan:
			pure = false
			return false
		}
		return true
	})
	return pure
}

// Subplan evaluates a subquery in expression position.
type SubplanMode uint8

// Subplan modes.
const (
	// SubplanScalar expects at most one row / one column; zero rows yield
	// NULL, more than one row is an error.
	SubplanScalar SubplanMode = iota
	// SubplanInAny tests whether Needle equals any first-column value.
	SubplanInAny
)

// Subplan is a compiled subquery expression. Correlated column references
// inside Plan are OuterRef nodes resolved against ctx.OuterRows.
type Subplan struct {
	Plan       Operator
	Mode       SubplanMode
	Needle     Expr // for SubplanInAny
	NotIn      bool
	Correlated bool

	cached bool
	cache  []types.Row
}

// Eval implements Expr.
func (s *Subplan) Eval(ctx *Ctx, row types.Row) (types.Datum, error) {
	rows, err := s.rows(ctx, row)
	if err != nil {
		return types.Null, err
	}
	switch s.Mode {
	case SubplanScalar:
		if len(rows) == 0 {
			return types.Null, nil
		}
		if len(rows) > 1 {
			return types.Null, errors.New("exec: scalar subquery returned more than one row")
		}
		if len(rows[0]) != 1 {
			return types.Null, errors.New("exec: scalar subquery must return one column")
		}
		return rows[0][0], nil
	case SubplanInAny:
		needle, err := s.Needle.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
		if needle.IsNull() {
			return types.Null, nil
		}
		sawNull := false
		for _, r := range rows {
			if r[0].IsNull() {
				sawNull = true
				continue
			}
			c, err := types.Compare(needle, r[0])
			if err != nil {
				return types.Null, err
			}
			if c == 0 {
				return types.NewBool(!s.NotIn), nil
			}
		}
		if sawNull {
			return types.Null, nil
		}
		return types.NewBool(s.NotIn), nil
	default:
		return types.Null, errors.New("exec: bad subplan mode")
	}
}

func (s *Subplan) rows(ctx *Ctx, row types.Row) ([]types.Row, error) {
	if !s.Correlated && s.cached {
		return s.cache, nil
	}
	ctx.OuterRows = append(ctx.OuterRows, row)
	defer func() { ctx.OuterRows = ctx.OuterRows[:len(ctx.OuterRows)-1] }()
	rows, err := Collect(ctx, s.Plan)
	if err != nil {
		return nil, err
	}
	if !s.Correlated {
		s.cached = true
		s.cache = rows
	}
	return rows, nil
}

func (s *Subplan) String() string { return "(subquery)" }
