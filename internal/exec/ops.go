package exec

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/types"
)

// Operator is a Volcano-style iterator. Next returns io.EOF when exhausted.
type Operator interface {
	Schema() *types.Schema
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (types.Row, error)
	Close() error
}

// Sized is implemented by operators that know their output row count once
// Open has run (materializing sources); Collect uses it to pre-size its
// result slice. RowCount returns -1 when the count is unknown.
type Sized interface {
	RowCount() int
}

// Collect opens, drains and closes op.
func Collect(ctx *Ctx, op Operator) ([]types.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	if s, ok := op.(Sized); ok {
		if n := s.RowCount(); n > 0 {
			out = make([]types.Row, 0, n)
		}
	}
	for {
		row, err := op.Next(ctx)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}

// ---------------------------------------------------------------------------
// Values / Source
// ---------------------------------------------------------------------------

// Values replays a fixed row set (VALUES lists, gathered remote results,
// CTE materializations).
type Values struct {
	Rows   []types.Row
	schema *types.Schema
	pos    int
}

// NewValues builds a Values operator.
func NewValues(schema *types.Schema, rows []types.Row) *Values {
	return &Values{Rows: rows, schema: schema}
}

// Schema implements Operator.
func (v *Values) Schema() *types.Schema { return v.schema }

// Open implements Operator.
func (v *Values) Open(*Ctx) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next(*Ctx) (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, io.EOF
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// RowCount implements Sized.
func (v *Values) RowCount() int { return len(v.Rows) }

// Source adapts a callback-style scan (storage.Table.Scan and friends) to
// an Operator by materializing at Open. ScanFn is re-invoked on every Open,
// so the operator can be re-executed (correlated subplans).
type Source struct {
	Name   string
	schema *types.Schema
	ScanFn func(emit func(types.Row) bool)
	rows   []types.Row
	pos    int
}

// NewSource builds a Source over scan.
func NewSource(name string, schema *types.Schema, scan func(emit func(types.Row) bool)) *Source {
	return &Source{Name: name, schema: schema, ScanFn: scan}
}

// Schema implements Operator.
func (s *Source) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *Source) Open(*Ctx) error {
	s.rows = s.rows[:0]
	s.ScanFn(func(r types.Row) bool {
		s.rows = append(s.rows, r)
		return true
	})
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Source) Next(*Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// RowCount implements Sized.
func (s *Source) RowCount() int { return len(s.rows) }

// Close implements Operator. The row buffer keeps its capacity so
// re-executed sources (correlated subplans Open/Close per outer row) do not
// reallocate it every iteration.
func (s *Source) Close() error { s.rows = s.rows[:0]; return nil }

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

// Filter passes rows whose predicate evaluates to true (NULL counts as
// false, per SQL).
type Filter struct {
	Child Operator
	Pred  Expr
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error { return f.Child.Open(ctx) }

// Next implements Operator.
func (f *Filter) Next(ctx *Ctx) (types.Row, error) {
	for {
		row, err := f.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		ok, err := EvalBool(f.Pred, ctx, row)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// EvalBool evaluates a predicate with SQL semantics (NULL -> false).
func EvalBool(e Expr, ctx *Ctx, row types.Row) (bool, error) {
	v, err := e.Eval(ctx, row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != types.KindBool {
		return false, fmt.Errorf("exec: predicate evaluated to %s, want BOOL", v.Kind())
	}
	return v.Bool(), nil
}

// Project computes output expressions per row.
type Project struct {
	Child Operator
	Exprs []Expr
	Out   *types.Schema
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.Out }

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error { return p.Child.Open(ctx) }

// Next implements Operator.
func (p *Project) Next(ctx *Ctx) (types.Row, error) {
	row, err := p.Child.Next(ctx)
	if err != nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(ctx, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// JoinType enumerates supported join types.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

// NestedLoopJoin joins by re-scanning the (materialized) right side per
// left row. Used for non-equi conditions and cross joins.
type NestedLoopJoin struct {
	Type        JoinType
	Left, Right Operator
	On          Expr // nil for cross join
	out         *types.Schema

	right   []types.Row
	cur     types.Row
	ri      int
	matched bool
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *types.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	rows, err := Collect(ctx, j.Right)
	if err != nil {
		return err
	}
	j.right = rows
	j.cur = nil
	j.ri = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Ctx) (types.Row, error) {
	nRight := len(j.Right.Schema().Columns)
	for {
		if j.cur == nil {
			row, err := j.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			j.cur = row
			j.ri = 0
			j.matched = false
		}
		for j.ri < len(j.right) {
			r := j.right[j.ri]
			j.ri++
			joined := append(append(make(types.Row, 0, len(j.cur)+len(r)), j.cur...), r...)
			if j.On != nil {
				ok, err := EvalBool(j.On, ctx, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			j.matched = true
			return joined, nil
		}
		// Left outer: emit null-extended row when no match.
		if j.Type == LeftJoin && !j.matched {
			left := j.cur
			j.cur = nil
			out := append(append(make(types.Row, 0, len(left)+nRight), left...), make(types.Row, nRight)...)
			return out, nil
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// HashJoin is an equi-join: build a hash table on the right side keyed by
// RightKeys, probe with LeftKeys. ExtraOn, if set, is evaluated over the
// combined row as a residual filter.
type HashJoin struct {
	Type        JoinType
	Left, Right Operator
	LeftKeys    []Expr
	RightKeys   []Expr
	ExtraOn     Expr
	// Bloom, when set, receives a bloom filter over the build side's
	// BloomKey-th key before the probe side opens — sideways information
	// passing so an NDP probe-side scan can drop non-matching rows on the
	// DN (see plan.ScanPushdown).
	Bloom    *BloomHandle
	BloomKey int
	// Dist, when set by the planner, is a distributed execution of this
	// join (co-located / broadcast / shuffle fragments built by the
	// engine). The join delegates to it wholesale and never opens its
	// children — they stay attached only so planning passes (projection
	// pushdown) can keep analyzing the tree.
	Dist Operator
	out  *types.Schema

	table   map[string][]types.Row
	cur     types.Row
	bucket  []types.Row
	bi      int
	matched bool
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator. The build side streams directly into the hash
// table — no intermediate row slice — before the probe side opens, so a
// sideways bloom filter (j.Bloom) is always published before any
// probe-side scan fragment starts. The bloom is built only after the whole
// build side has been consumed without error: a failed build must
// propagate its error instead of publishing a filter that probe fragments
// would wait on.
func (j *HashJoin) Open(ctx *Ctx) error {
	if j.Dist != nil {
		return j.Dist.Open(ctx)
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][]types.Row)
	n := 0
	for {
		r, err := j.Right.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n++
		key, null, err := keyOf(ctx, j.RightKeys, r)
		if err != nil {
			return err
		}
		if null {
			continue // NULL keys never match
		}
		j.table[key] = append(j.table[key], r)
	}
	if j.Bloom != nil {
		bf := NewBloom(n)
		for _, bucket := range j.table {
			for _, r := range bucket {
				v, err := j.RightKeys[j.BloomKey].Eval(ctx, r)
				if err != nil {
					return err
				}
				if v.IsNull() {
					continue // NULL keys never match; nothing to admit
				}
				bf.Add(v)
			}
		}
		j.Bloom.Set(bf)
	}
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	j.cur = nil
	return nil
}

// keyOf encodes key expressions into a map key; null reports any NULL key
// part.
func keyOf(ctx *Ctx, keys []Expr, row types.Row) (string, bool, error) {
	var sb strings.Builder
	for _, k := range keys {
		v, err := k.Eval(ctx, row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		// Normalize numerics so INT 3 matches FLOAT 3.0 (consistent with
		// types.Compare).
		if v.Kind() == types.KindInt || v.Kind() == types.KindFloat {
			fmt.Fprintf(&sb, "n:%g|", v.Float())
		} else {
			fmt.Fprintf(&sb, "%d:%s|", v.Kind(), v.String())
		}
	}
	return sb.String(), false, nil
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Ctx) (types.Row, error) {
	if j.Dist != nil {
		return j.Dist.Next(ctx)
	}
	nRight := len(j.Right.Schema().Columns)
	for {
		if j.cur == nil {
			row, err := j.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			j.cur = row
			j.matched = false
			key, null, err := keyOf(ctx, j.LeftKeys, row)
			if err != nil {
				return nil, err
			}
			if null {
				j.bucket = nil
			} else {
				j.bucket = j.table[key]
			}
			j.bi = 0
		}
		for j.bi < len(j.bucket) {
			r := j.bucket[j.bi]
			j.bi++
			joined := append(append(make(types.Row, 0, len(j.cur)+len(r)), j.cur...), r...)
			if j.ExtraOn != nil {
				ok, err := EvalBool(j.ExtraOn, ctx, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			j.matched = true
			return joined, nil
		}
		if j.Type == LeftJoin && !j.matched {
			left := j.cur
			j.cur = nil
			out := append(append(make(types.Row, 0, len(left)+nRight), left...), make(types.Row, nRight)...)
			return out, nil
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	if j.Dist != nil {
		return j.Dist.Close()
	}
	j.table = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// EncodeJoinKey encodes key expressions evaluated over row into the map
// key HashJoin uses, reporting null=true when any key part is NULL (such
// rows can never match an equi-join). Exported so distributed join
// fragments partition and build with byte-identical keys.
func EncodeJoinKey(ctx *Ctx, keys []Expr, row types.Row) (string, bool, error) {
	return keyOf(ctx, keys, row)
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate kinds.
const (
	AggCountStar AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name.
func (k AggKind) String() string {
	switch k {
	case AggCountStar, AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "agg?"
	}
}

// AggSpec is one aggregate in an Agg operator.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr // nil for count(*)
	Distinct bool
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	min     types.Datum
	max     types.Datum
	seen    map[string]struct{} // for DISTINCT
	any     bool
}

// Agg is a hash aggregation: output columns are the group-by values
// followed by the aggregate results. With no group-by expressions it emits
// exactly one row (aggregates over the whole input, zero-row input
// included).
type Agg struct {
	Child   Operator
	GroupBy []Expr
	Aggs    []AggSpec
	Out     *types.Schema

	groups []types.Row
	pos    int
}

// Schema implements Operator.
func (a *Agg) Schema() *types.Schema { return a.Out }

// Open implements Operator.
func (a *Agg) Open(ctx *Ctx) error {
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	defer a.Child.Close()

	type group struct {
		key    types.Row
		states []*aggState
	}
	groups := make(map[string]*group)
	var order []string

	for {
		row, err := a.Child.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		keyVals := make(types.Row, len(a.GroupBy))
		for i, g := range a.GroupBy {
			v, err := g.Eval(ctx, row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		key := rowKey(keyVals)
		grp, ok := groups[key]
		if !ok {
			grp = &group{key: keyVals, states: make([]*aggState, len(a.Aggs))}
			for i := range grp.states {
				grp.states[i] = &aggState{}
				if a.Aggs[i].Distinct {
					grp.states[i].seen = make(map[string]struct{})
				}
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, spec := range a.Aggs {
			if err := grp.states[i].update(ctx, spec, row); err != nil {
				return err
			}
		}
	}

	// No groups and no group-by: emit the identity row.
	if len(order) == 0 && len(a.GroupBy) == 0 {
		states := make([]*aggState, len(a.Aggs))
		for i := range states {
			states[i] = &aggState{}
		}
		out := make(types.Row, 0, len(a.Aggs))
		for i, spec := range a.Aggs {
			out = append(out, states[i].result(spec))
		}
		a.groups = []types.Row{out}
		a.pos = 0
		return nil
	}

	a.groups = a.groups[:0]
	for _, key := range order {
		grp := groups[key]
		out := make(types.Row, 0, len(grp.key)+len(a.Aggs))
		out = append(out, grp.key...)
		for i, spec := range a.Aggs {
			out = append(out, grp.states[i].result(spec))
		}
		a.groups = append(a.groups, out)
	}
	a.pos = 0
	return nil
}

func rowKey(vals types.Row) string {
	var sb strings.Builder
	for _, v := range vals {
		if v.IsNull() {
			sb.WriteString("~|")
			continue
		}
		if v.Kind() == types.KindInt || v.Kind() == types.KindFloat {
			fmt.Fprintf(&sb, "n:%g|", v.Float())
		} else {
			fmt.Fprintf(&sb, "%d:%s|", v.Kind(), v.String())
		}
	}
	return sb.String()
}

func (s *aggState) update(ctx *Ctx, spec AggSpec, row types.Row) error {
	if spec.Kind == AggCountStar {
		s.count++
		return nil
	}
	v, err := spec.Arg.Eval(ctx, row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if spec.Distinct {
		k := rowKey(types.Row{v})
		if _, dup := s.seen[k]; dup {
			return nil
		}
		s.seen[k] = struct{}{}
	}
	s.count++
	switch spec.Kind {
	case AggCount:
		// count only
	case AggSum, AggAvg:
		switch v.Kind() {
		case types.KindInt:
			if s.isFloat {
				s.sumF += float64(v.Int())
			} else {
				s.sumI += v.Int()
			}
		case types.KindFloat:
			if !s.isFloat {
				s.sumF = float64(s.sumI)
				s.isFloat = true
			}
			s.sumF += v.Float()
		default:
			return fmt.Errorf("exec: %s over %s", spec.Kind, v.Kind())
		}
	case AggMin:
		if !s.any {
			s.min = v
		} else if c, err := types.Compare(v, s.min); err != nil {
			return err
		} else if c < 0 {
			s.min = v
		}
	case AggMax:
		if !s.any {
			s.max = v
		} else if c, err := types.Compare(v, s.max); err != nil {
			return err
		} else if c > 0 {
			s.max = v
		}
	}
	s.any = true
	return nil
}

func (s *aggState) result(spec AggSpec) types.Datum {
	switch spec.Kind {
	case AggCountStar, AggCount:
		return types.NewInt(s.count)
	case AggSum:
		if !s.any {
			return types.Null
		}
		if s.isFloat {
			return types.NewFloat(s.sumF)
		}
		return types.NewInt(s.sumI)
	case AggAvg:
		if s.count == 0 {
			return types.Null
		}
		if s.isFloat {
			return types.NewFloat(s.sumF / float64(s.count))
		}
		return types.NewFloat(float64(s.sumI) / float64(s.count))
	case AggMin:
		if !s.any {
			return types.Null
		}
		return s.min
	case AggMax:
		if !s.any {
			return types.Null
		}
		return s.max
	default:
		return types.Null
	}
}

// Next implements Operator.
func (a *Agg) Next(*Ctx) (types.Row, error) {
	if a.pos >= len(a.groups) {
		return nil, io.EOF
	}
	r := a.groups[a.pos]
	a.pos++
	return r, nil
}

// Close implements Operator.
func (a *Agg) Close() error { a.groups = nil; return nil }

// ---------------------------------------------------------------------------
// Sort / Limit / Distinct
// ---------------------------------------------------------------------------

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort materializes and sorts its input.
type Sort struct {
	Child Operator
	Keys  []SortKey

	rows []types.Row
	pos  int
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ctx *Ctx) error {
	rows, err := Collect(ctx, s.Child)
	if err != nil {
		return err
	}
	keys := make([][]types.Datum, len(rows))
	for i, r := range rows {
		ks := make([]types.Datum, len(s.Keys))
		for k, key := range s.Keys {
			v, err := key.Expr.Eval(ctx, r)
			if err != nil {
				return err
			}
			ks[k] = v
		}
		keys[i] = ks
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for k, key := range s.Keys {
			c, err := types.Compare(keys[idx[a]][k], keys[idx[b]][k])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = make([]types.Row, len(rows))
	for i, j := range idx {
		s.rows[i] = rows[j]
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next(*Ctx) (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error { s.rows = nil; return nil }

// Limit implements LIMIT/OFFSET. Limit < 0 means unlimited.
type Limit struct {
	Child  Operator
	Count  int64
	Offset int64

	skipped int64
	emitted int64
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx) error {
	l.skipped, l.emitted = 0, 0
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx *Ctx) (types.Row, error) {
	for l.skipped < l.Offset {
		if _, err := l.Child.Next(ctx); err != nil {
			return nil, err
		}
		l.skipped++
	}
	if l.Count >= 0 && l.emitted >= l.Count {
		return nil, io.EOF
	}
	row, err := l.Child.Next(ctx)
	if err != nil {
		return nil, err
	}
	l.emitted++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Operator
	seen  map[string]struct{}
}

// Schema implements Operator.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open(ctx *Ctx) error {
	d.seen = make(map[string]struct{})
	return d.Child.Open(ctx)
}

// Next implements Operator.
func (d *Distinct) Next(ctx *Ctx) (types.Row, error) {
	for {
		row, err := d.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		k := rowKey(row)
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { d.seen = nil; return d.Child.Close() }

// Concat streams its children in order (UNION ALL).
type Concat struct {
	Children []Operator
	Out      *types.Schema
	cur      int
}

// Schema implements Operator.
func (c *Concat) Schema() *types.Schema { return c.Out }

// Open implements Operator.
func (c *Concat) Open(ctx *Ctx) error {
	c.cur = 0
	if len(c.Children) == 0 {
		return nil
	}
	return c.Children[0].Open(ctx)
}

// Next implements Operator.
func (c *Concat) Next(ctx *Ctx) (types.Row, error) {
	for c.cur < len(c.Children) {
		row, err := c.Children[c.cur].Next(ctx)
		if err == io.EOF {
			c.Children[c.cur].Close()
			c.cur++
			if c.cur < len(c.Children) {
				if err := c.Children[c.cur].Open(ctx); err != nil {
					return nil, err
				}
			}
			continue
		}
		return row, err
	}
	return nil, io.EOF
}

// Close implements Operator.
func (c *Concat) Close() error {
	for i := c.cur; i < len(c.Children); i++ {
		c.Children[i].Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

// Counted wraps an operator and counts the rows it produces; the learning
// optimizer's producer (internal/planstore) reads ActualRows after the
// query finishes (paper §II-C "captures actual execution statistics").
type Counted struct {
	Child Operator
	// StepText is the canonical logical step definition this operator
	// implements; set by the planner.
	StepText string
	// EstimatedRows is the optimizer's cardinality estimate for this step.
	EstimatedRows float64
	// ActualRows counts rows produced in the most recent execution.
	ActualRows int64
}

// Schema implements Operator.
func (c *Counted) Schema() *types.Schema { return c.Child.Schema() }

// Open implements Operator.
func (c *Counted) Open(ctx *Ctx) error {
	c.ActualRows = 0
	return c.Child.Open(ctx)
}

// Next implements Operator.
func (c *Counted) Next(ctx *Ctx) (types.Row, error) {
	row, err := c.Child.Next(ctx)
	if err == nil {
		c.ActualRows++
	}
	return row, err
}

// Close implements Operator.
func (c *Counted) Close() error { return c.Child.Close() }

// WalkCounted visits every Counted operator in the tree rooted at op.
func WalkCounted(op Operator, visit func(*Counted)) {
	switch o := op.(type) {
	case *Counted:
		visit(o)
		WalkCounted(o.Child, visit)
	case *Filter:
		WalkCounted(o.Child, visit)
	case *Project:
		WalkCounted(o.Child, visit)
	case *NestedLoopJoin:
		WalkCounted(o.Left, visit)
		WalkCounted(o.Right, visit)
	case *HashJoin:
		if o.Dist != nil {
			WalkCounted(o.Dist, visit)
			return
		}
		WalkCounted(o.Left, visit)
		WalkCounted(o.Right, visit)
	case *Agg:
		WalkCounted(o.Child, visit)
	case *Sort:
		WalkCounted(o.Child, visit)
	case *TopN:
		WalkCounted(o.Child, visit)
	case *Limit:
		WalkCounted(o.Child, visit)
	case *Distinct:
		WalkCounted(o.Child, visit)
	}
}

// ErrNotFound is a generic sentinel for lookup misses in exec helpers.
var ErrNotFound = errors.New("exec: not found")
