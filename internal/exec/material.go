package exec

import (
	"io"

	"repro/internal/types"
)

// MatState is the shared cache behind one WITH-clause materialization. All
// references to the same CTE share one MatState, so the CTE body executes
// at most once per statement (queries are single-threaded; no locking
// needed).
type MatState struct {
	Child Operator
	done  bool
	rows  []types.Row
	err   error
}

// NewMatState wraps the CTE body.
func NewMatState(child Operator) *MatState { return &MatState{Child: child} }

// rowsOnce executes the child on first use and caches the result.
func (m *MatState) rowsOnce(ctx *Ctx) ([]types.Row, error) {
	if !m.done {
		m.rows, m.err = Collect(ctx, m.Child)
		m.done = true
	}
	return m.rows, m.err
}

// Reset clears the cache so the next Open re-executes the body (used when
// the same prepared plan is re-run in a new statement).
func (m *MatState) Reset() { m.done = false; m.rows = nil; m.err = nil }

// MaterialRef is one reference to a shared materialization; each reference
// keeps its own cursor.
type MaterialRef struct {
	State *MatState
	Out   *types.Schema
	rows  []types.Row
	pos   int
}

// Schema implements Operator.
func (r *MaterialRef) Schema() *types.Schema { return r.Out }

// Open implements Operator.
func (r *MaterialRef) Open(ctx *Ctx) error {
	rows, err := r.State.rowsOnce(ctx)
	if err != nil {
		return err
	}
	r.rows = rows
	r.pos = 0
	return nil
}

// Next implements Operator.
func (r *MaterialRef) Next(*Ctx) (types.Row, error) {
	if r.pos >= len(r.rows) {
		return nil, io.EOF
	}
	row := r.rows[r.pos]
	r.pos++
	return row, nil
}

// Close implements Operator.
func (r *MaterialRef) Close() error { return nil }
