// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index E1–E21). cmd/fibench is a
// thin CLI over these functions and bench_test.go wraps them as Go
// benchmarks; both print the same tables.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/autonomous"
	"repro/internal/benchfmt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/dsync"
	"repro/internal/gmdb"
	"repro/internal/gmdb/schema"
	"repro/internal/htap"
	"repro/internal/mme"
	"repro/internal/perfsim"
	"repro/internal/plan"
	"repro/internal/rebalance"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/tpcc"
	"repro/internal/transport"
	"repro/internal/types"
)

// Fig3 regenerates the paper's Fig 3 (GTM-Lite scalability): throughput vs
// cluster size for GTM-lite and baseline under the 100 % single-shard (SS)
// and 90 % single-shard (MS) TPC-C-like workloads, in the virtual-time
// cluster simulator. Returns the GTM-lite-SS series for assertions.
func Fig3(w io.Writer, duration float64) map[string][]float64 {
	sizes := []int{1, 2, 4, 8}
	series := map[string][]float64{}
	run := func(mode perfsim.Mode, ss float64) []float64 {
		out := make([]float64, len(sizes))
		for i, n := range sizes {
			p := perfsim.DefaultParams(n, mode, ss)
			if duration > 0 {
				p.Duration = duration
			}
			out[i] = perfsim.Run(p).Throughput
		}
		return out
	}
	series["gtm-lite SS"] = run(perfsim.GTMLite, 1.0)
	series["gtm-lite MS"] = run(perfsim.GTMLite, 0.9)
	series["baseline SS"] = run(perfsim.Baseline, 1.0)
	series["baseline MS"] = run(perfsim.Baseline, 0.9)

	var rows [][]string
	for i, n := range sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			benchfmt.F(series["gtm-lite SS"][i]),
			benchfmt.F(series["gtm-lite MS"][i]),
			benchfmt.F(series["baseline SS"][i]),
			benchfmt.F(series["baseline MS"][i]),
		})
	}
	benchfmt.Table(w, "Fig 3 — GTM-Lite scalability (txn/s, virtual time)",
		[]string{"nodes", "gtm-lite SS", "gtm-lite MS", "baseline SS", "baseline MS"}, rows)
	fmt.Fprintln(w, "shape check: gtm-lite scales ~linearly; baseline flattens once the")
	fmt.Fprintln(w, "serialized GTM saturates (paper: 'GTM-Lite achieved higher throughput")
	fmt.Fprintln(w, "and scaled out much better than baseline').")
	return series
}

// Table1 regenerates §II-C Table I: it runs the paper's example query
//
//	select * from OLAP.t1, OLAP.t2
//	where OLAP.t1.a1=OLAP.t2.a2 and OLAP.t1.b1 > 10
//
// on a live cluster with the learning optimizer capturing, then prints the
// plan store's logical canonical form with estimated and actual rows.
func Table1(w io.Writer) error {
	db, err := core.Open(core.Options{DataNodes: 2, Learning: true})
	if err != nil {
		return err
	}
	defer db.Close()
	db.MustExec("CREATE TABLE olap.t1 (a1 BIGINT, b1 BIGINT) DISTRIBUTE BY HASH(a1)")
	db.MustExec("CREATE TABLE olap.t2 (a2 BIGINT, c2 TEXT) DISTRIBUTE BY HASH(a2)")
	s := db.Session()
	// Skewed data without ANALYZE: the optimizer's default estimates are
	// off, so the executor captures the steps (the paper's trigger:
	// "a big differential between actual and estimated row counts").
	for i := 0; i < 150; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO olap.t1 VALUES (%d, %d)", i%25, i)); err != nil {
			return err
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO olap.t2 VALUES (%d, 'n%d')", i, i)); err != nil {
			return err
		}
	}
	if _, err := db.Query("select * from OLAP.t1, OLAP.t2 where OLAP.t1.a1=OLAP.t2.a2 and OLAP.t1.b1 > 10"); err != nil {
		return err
	}
	var rows [][]string
	for _, e := range db.PlanStore().Entries() {
		rows = append(rows, []string{e.StepText, benchfmt.F(e.Estimated), benchfmt.F(e.Actual), e.Hash[:8] + "…"})
	}
	benchfmt.Table(w, "Table I — logical canonical form (plan store contents)",
		[]string{"Step Description", "Estimate", "Actual", "MD5 key"}, rows)
	return nil
}

// Fig8 regenerates the MME schema conversion matrix.
func Fig8(w io.Writer) error {
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		return err
	}
	m := mme.ConversionMatrix(reg)
	headers := []string{"MME"}
	for _, v := range mme.Versions {
		headers = append(headers, fmt.Sprintf("V%d", v))
	}
	var rows [][]string
	for i, v := range mme.Versions {
		row := []string{fmt.Sprintf("V%d", v)}
		row = append(row, m[i]...)
		rows = append(rows, row)
	}
	benchfmt.Table(w, "Fig 8 — multiple schema conversions in MME versions", headers, rows)
	return nil
}

// Fig11Result carries the measured GMDB schema-evolution numbers.
type Fig11Result struct {
	SameVersionOpsPerSec float64
	UpgradeOpsPerSec     float64
	DowngradeOpsPerSec   float64
	MultiHopOpsPerSec    float64
	FullUpdateBytes      int64
	DeltaUpdateBytes     int64
}

// Fig11 regenerates the GMDB online schema evolution experiment: read
// throughput with and without on-the-fly conversion, plus the delta-sync
// vs whole-object bandwidth comparison, over synthetic MME sessions
// (5–10 KB, as in the paper's setup).
func Fig11(w io.Writer, sessions, opsPerCase int) (Fig11Result, error) {
	var res Fig11Result
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		return res, err
	}
	store := gmdb.NewStore(reg, gmdb.Config{Partitions: 2})
	defer store.Close()

	rng := rand.New(rand.NewSource(1))
	keys := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		obj, err := mme.GenerateSession(rng, 5, int64(i))
		if err != nil {
			return res, err
		}
		keys[i] = fmt.Sprintf("imsi-%d", i)
		if err := store.Put(keys[i], obj); err != nil {
			return res, err
		}
	}

	measure := func(version int) (float64, error) {
		start := time.Now()
		for i := 0; i < opsPerCase; i++ {
			if _, err := store.Get(keys[i%len(keys)], version); err != nil {
				return 0, err
			}
		}
		return float64(opsPerCase) / time.Since(start).Seconds(), nil
	}
	var err error
	if res.SameVersionOpsPerSec, err = measure(5); err != nil {
		return res, err
	}
	if res.UpgradeOpsPerSec, err = measure(6); err != nil {
		return res, err
	}
	if res.DowngradeOpsPerSec, err = measure(3); err != nil {
		return res, err
	}
	if res.MultiHopOpsPerSec, err = measure(8); err != nil {
		return res, err
	}

	// Delta vs whole-object update bandwidth via a subscriber (the client
	// sync path).
	sub, err := store.Subscribe(keys[0], 6, 4096)
	if err != nil {
		return res, err
	}
	defer sub.Cancel()
	for i := 0; i < opsPerCase/10+1; i++ {
		obj, _ := mme.GenerateSession(rng, 5, int64(0))
		if err := store.Put(keys[0], obj); err != nil {
			return res, err
		}
		d, _ := mme.SessionDelta(rng, 5, "imsi-0", 0)
		if err := store.ApplyDelta(keys[0], d); err != nil {
			return res, err
		}
	}
	st := store.Stats()
	res.FullUpdateBytes = st.FullSyncBytes
	res.DeltaUpdateBytes = st.DeltaSyncBytes

	benchfmt.Table(w, "Fig 11 — GMDB online schema evolution (synthetic MME sessions)",
		[]string{"case", "ops/s"},
		[][]string{
			{"read, same version (V5->V5)", benchfmt.F(res.SameVersionOpsPerSec)},
			{"read, upgrade (V5->V6)", benchfmt.F(res.UpgradeOpsPerSec)},
			{"read, downgrade (V5->V3)", benchfmt.F(res.DowngradeOpsPerSec)},
			{"read, multi-hop (V5->V8)", benchfmt.F(res.MultiHopOpsPerSec)},
		})
	benchfmt.Table(w, "Fig 11 companion — delta vs whole-object sync (same update count)",
		[]string{"sync mode", "bytes"},
		[][]string{
			{"whole object", fmt.Sprintf("%d", res.FullUpdateBytes)},
			{"delta object", fmt.Sprintf("%d", res.DeltaUpdateBytes)},
		})
	return res, nil
}

// LearnResult carries the learning-optimizer quality measurement.
type LearnResult struct {
	QErrBefore, QErrAfter float64
}

// Learn (E6) measures cardinality-estimation quality (Q-error) on a canned
// reporting workload before and after the plan store learns actuals.
func Learn(w io.Writer) (LearnResult, error) {
	var out LearnResult
	db, err := core.Open(core.Options{DataNodes: 2, Learning: true})
	if err != nil {
		return out, err
	}
	defer db.Close()
	db.MustExec("CREATE TABLE facts (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
	s := db.Session()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		grp := int64(0) // zipf-ish skew the histogram cannot capture per-value
		if rng.Float64() > 0.8 {
			grp = int64(1 + rng.Intn(50))
		}
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO facts VALUES (%d, %d, %d)", i, grp, rng.Intn(1000))); err != nil {
			return out, err
		}
	}
	if err := db.Analyze("facts"); err != nil {
		return out, err
	}
	queries := []string{
		"SELECT * FROM facts WHERE grp = 0",
		"SELECT * FROM facts WHERE grp = 7",
		"SELECT count(*) FROM facts WHERE grp = 0 AND v < 500",
	}
	qerrPass := func() (float64, error) {
		total, n := 0.0, 0
		for _, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				return 0, err
			}
			for _, c := range res.Plan.Counted {
				total += qerr(c.EstimatedRows, float64(c.ActualRows))
				n++
			}
		}
		return total / float64(n), nil
	}
	if out.QErrBefore, err = qerrPass(); err != nil {
		return out, err
	}
	// Second pass: the consumer now serves captured actuals.
	if out.QErrAfter, err = qerrPass(); err != nil {
		return out, err
	}
	benchfmt.Table(w, "Learning optimizer — mean Q-error on canned workload (E6)",
		[]string{"pass", "mean q-error"},
		[][]string{
			{"cold (histogram estimates)", benchfmt.F(out.QErrBefore)},
			{"warm (plan-store actuals)", benchfmt.F(out.QErrAfter)},
		})
	return out, nil
}

func qerr(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// TPCC validates the GTM-lite protocol on the live engine: commit counts,
// multi-shard fraction, GTM traffic and the money-conservation invariant,
// for both modes and both workload mixes.
func TPCC(w io.Writer, txns int) error {
	type caseDef struct {
		mode cluster.TxnMode
		ss   float64
	}
	cases := []caseDef{
		{cluster.ModeGTMLite, 1.0},
		{cluster.ModeGTMLite, 0.9},
		{cluster.ModeBaseline, 1.0},
		{cluster.ModeBaseline, 0.9},
	}
	var rows [][]string
	for _, cd := range cases {
		c, err := cluster.New(cluster.Config{DataNodes: 4, Mode: cd.mode})
		if err != nil {
			return err
		}
		cfg := tpcc.DefaultConfig(4, cd.ss)
		if err := tpcc.Load(c, cfg); err != nil {
			return err
		}
		base := c.GTMStats().Total()
		d := tpcc.NewDriver(c, cfg, 0)
		if err := d.Run(txns); err != nil {
			return err
		}
		gtmReqs := c.GTMStats().Total() - base // before the (scatter) invariant queries
		invariant := "OK"
		if err := tpcc.CheckInvariants(c, cfg); err != nil {
			invariant = err.Error()
		}
		rows = append(rows, []string{
			cd.mode.String(),
			benchfmt.Pct(cd.ss),
			fmt.Sprintf("%d", d.Stats.Committed),
			fmt.Sprintf("%d", d.Stats.MultiShard),
			fmt.Sprintf("%d", gtmReqs),
			invariant,
		})
	}
	benchfmt.Table(w, "TPC-C protocol validation on the live engine (E1 companion)",
		[]string{"mode", "single-shard", "committed", "multi-shard", "GTM requests", "invariants"}, rows)
	return nil
}

// AblationCrossShard (E8) sweeps the multi-shard fraction: GTM-lite's
// advantage shrinks as cross-shard work grows.
func AblationCrossShard(w io.Writer, duration float64) {
	fractions := []float64{1.0, 0.95, 0.9, 0.7, 0.5, 0.0}
	var rows [][]string
	for _, ss := range fractions {
		pl := perfsim.DefaultParams(4, perfsim.GTMLite, ss)
		pb := perfsim.DefaultParams(4, perfsim.Baseline, ss)
		if duration > 0 {
			pl.Duration, pb.Duration = duration, duration
		}
		rl, rb := perfsim.Run(pl), perfsim.Run(pb)
		rows = append(rows, []string{
			benchfmt.Pct(1 - ss),
			benchfmt.F(rl.Throughput),
			benchfmt.F(rb.Throughput),
			fmt.Sprintf("%.2fx", rl.Throughput/rb.Throughput),
		})
	}
	benchfmt.Table(w, "Ablation — cross-shard fraction sweep @4 nodes (E8)",
		[]string{"cross-shard", "gtm-lite txn/s", "baseline txn/s", "speedup"}, rows)
}

// AblationGTMService (E8) sweeps the GTM service time: the slower the
// centralized service, the earlier the baseline flattens.
func AblationGTMService(w io.Writer, duration float64) {
	services := []float64{5e-6, 25e-6, 100e-6}
	var rows [][]string
	for _, svc := range services {
		pl := perfsim.DefaultParams(8, perfsim.GTMLite, 0.9)
		pb := perfsim.DefaultParams(8, perfsim.Baseline, 0.9)
		pl.GTMService, pb.GTMService = svc, svc
		if duration > 0 {
			pl.Duration, pb.Duration = duration, duration
		}
		rl, rb := perfsim.Run(pl), perfsim.Run(pb)
		rows = append(rows, []string{
			fmt.Sprintf("%.0fµs", svc*1e6),
			benchfmt.F(rl.Throughput),
			benchfmt.F(rb.Throughput),
			benchfmt.Pct(rb.GTMUtilization),
		})
	}
	benchfmt.Table(w, "Ablation — GTM service time sweep @8 nodes, 90% SS (E8)",
		[]string{"GTM service", "gtm-lite txn/s", "baseline txn/s", "baseline GTM util"}, rows)
}

// EdgeSync (E10) compares device-to-device mesh sync against via-cloud
// sync: convergence time (virtual) and bytes.
func EdgeSync(w io.Writer, devices, keysPerDevice int) {
	mkNodes := func() []*dsync.Node {
		var nodes []*dsync.Node
		for i := 0; i < devices; i++ {
			n := dsync.NewNode(fmt.Sprintf("dev%d", i), dsync.Device, nil)
			for j := 0; j < keysPerDevice; j++ {
				n.Put(fmt.Sprintf("n%d/k%d", i, j), make([]byte, 256))
			}
			nodes = append(nodes, n)
		}
		return nodes
	}
	direct, internet := dsync.DefaultLinks()
	mesh := dsync.Converge(mkNodes(), nil, dsync.MeshP2P, direct, 0)
	cloud := dsync.Converge(mkNodes(), dsync.NewNode("cloud", dsync.Cloud, nil), dsync.ViaCloud, internet, 0)
	leader := dsync.Converge(mkNodes(), dsync.NewNode("router", dsync.Edge, nil), dsync.LeaderStar, direct, 0)
	row := func(name string, r dsync.ConvergeResult) []string {
		return []string{name, fmt.Sprintf("%v", r.Converged), fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Messages), fmt.Sprintf("%d", r.Bytes), r.SimTime.String()}
	}
	benchfmt.Table(w, "Device-edge-cloud sync: P2P mesh vs via-cloud vs leader (E10)",
		[]string{"topology", "converged", "rounds", "messages", "bytes", "sim time"},
		[][]string{
			row("P2P mesh (direct radio)", mesh),
			row("via cloud (Internet)", cloud),
			row("leader star (router)", leader),
		})
}

// Expand (E11) measures online cluster expansion: TPC-C-like traffic runs
// before, during and after a live 2 -> 4 shard rebalance, with per-table
// checksum verification, the rebalance counters, and the resulting data
// spread across shards.
func Expand(w io.Writer, txnsPerPhase int) error {
	c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
	if err != nil {
		return err
	}
	cfg := tpcc.DefaultConfig(8, 0.9)
	if err := tpcc.Load(c, cfg); err != nil {
		return err
	}
	// item is the only table TPC-C never writes, so its checksum must come
	// through the migration bit-identical; the mutated fixed-cardinality
	// tables must at least keep their exact row counts.
	fixed := []string{"warehouse", "district", "customer", "stock"}
	beforeCounts := map[string]cluster.TableDigest{}
	for _, tb := range fixed {
		d, err := c.TableChecksum(tb)
		if err != nil {
			return err
		}
		beforeCounts[tb] = d
	}
	itemBefore, err := c.TableChecksum("item")
	if err != nil {
		return err
	}

	var rows [][]string
	drv := tpcc.NewDriver(c, cfg, 1)
	phase := func(name string, run func() error) error {
		pre := drv.Stats
		start := time.Now()
		if err := run(); err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		committed := drv.Stats.Committed - pre.Committed
		aborted := drv.Stats.Aborted - pre.Aborted
		rows = append(rows, []string{
			name,
			benchfmt.F(float64(committed) / elapsed),
			fmt.Sprintf("%d", committed),
			fmt.Sprintf("%d", aborted),
			fmt.Sprintf("%d", c.DataNodeCount()),
		})
		return nil
	}

	if err := phase("before", func() error { return drv.Run(txnsPerPhase) }); err != nil {
		return err
	}

	// Expansion in the background; the driver keeps issuing transactions
	// until the last bucket flips. Migration-window aborts (frozen buckets)
	// land in the aborted column — that is the cost of staying online.
	store := autonomous.NewInfoStore(nil)
	r := rebalance.New(c, rebalance.Options{MaxConcurrentMoves: 2, Metrics: store})
	var expErr error
	if err := phase("during expansion", func() error {
		done := make(chan struct{})
		go func() {
			expErr = r.ExpandTo(4)
			close(done)
		}()
		for {
			select {
			case <-done:
				return nil
			default:
				if err := drv.RunOne(); err != nil {
					return err
				}
			}
		}
	}); err != nil {
		return err
	}
	if expErr != nil {
		return expErr
	}

	if err := phase("after", func() error { return drv.Run(txnsPerPhase) }); err != nil {
		return err
	}

	verified := "OK"
	if d, err := c.TableChecksum("item"); err != nil {
		return err
	} else if d != itemBefore {
		verified = "item checksum MISMATCH"
	}
	for _, tb := range fixed {
		d, err := c.TableChecksum(tb)
		if err != nil {
			return err
		}
		if d.Rows != beforeCounts[tb].Rows {
			verified = fmt.Sprintf("%s row count changed %d -> %d", tb, beforeCounts[tb].Rows, d.Rows)
			break
		}
	}
	p := r.Progress()
	owned := make([]int, c.DataNodeCount())
	for _, dn := range c.BucketOwners() {
		owned[dn]++
	}
	var spread []string
	for dn, n := range owned {
		spread = append(spread, fmt.Sprintf("dn%d=%d", dn, n))
	}
	benchfmt.Table(w, "Online expansion 2 -> 4 shards under TPC-C-like load (E11)",
		[]string{"phase", "txn/s", "committed", "aborted", "shards"}, rows)
	fmt.Fprintf(w, "buckets moved %d/%d, rows copied %d, retries %d, data verification %s\n",
		p.Moved, p.Planned, p.RowsCopied, p.Retries, verified)
	fmt.Fprintf(w, "hash buckets per shard: %s\n\n", strings.Join(spread, " "))
	return nil
}

// MPPExtensions (E12) prints the exchange-volume and vectorized-execution
// ablations on the live engine.
func MPPExtensions(w io.Writer) error {
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		return err
	}
	defer db.Close()
	s := db.Session()
	for _, ddl := range []string{
		"CREATE TABLE frow (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)",
		"CREATE TABLE fcol (k BIGINT, grp BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN",
	} {
		if _, err := s.Exec(ddl); err != nil {
			return err
		}
	}
	for i := 0; i < 10000; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO frow VALUES (%d, %d, %d)", i, i%8, i)); err != nil {
			return err
		}
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO fcol VALUES (%d, %d, %d)", i, i%8, i)); err != nil {
			return err
		}
	}
	type caseDef struct {
		name, sql, table string
	}
	cases := []caseDef{
		{"pushdown (mergeable aggs)", "SELECT grp, count(*), sum(v) FROM %s GROUP BY grp", "frow"},
		{"gather fallback (avg)", "SELECT grp, avg(v) FROM %s GROUP BY grp", "frow"},
		{"vectorized columnar", "SELECT grp, count(*), sum(v) FROM %s GROUP BY grp", "fcol"},
		{"plain scan (reference)", "SELECT * FROM %s", "frow"},
	}
	var rows [][]string
	for _, cd := range cases {
		start := time.Now()
		res, err := s.Exec(fmt.Sprintf(cd.sql, cd.table))
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			cd.name,
			fmt.Sprintf("%d", res.RowsShipped),
			fmt.Sprintf("%d", len(res.Rows)),
			time.Since(start).Round(time.Microsecond).String(),
		})
	}
	benchfmt.Table(w, "MPP extensions — two-phase & vectorized aggregation over 10k rows @4 shards (E12)",
		[]string{"plan shape", "rows shipped to CN", "result rows", "latency"}, rows)
	return nil
}

// Parallel regenerates E13 (parallel intra-query execution): latency of a
// selective columnar scatter aggregate at parallel degree 1/2/4 with
// segment pruning on and off, under the per-hop network cost model. The
// degree ablation shows the DN round trips overlapping through the
// exchange operator; the pruning ablation shows zone maps cutting the
// segments (and rows) each DN actually decodes. Queries run inside one
// explicit transaction so the degree-independent 2PC hops are paid once.
func Parallel(w io.Writer) error {
	// Load with the cost model off (write hops would dominate the wall
	// clock), then switch it on for the measured queries.
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		return err
	}
	defer db.Close()
	s := db.Session()
	if _, err := s.Exec("CREATE TABLE pfacts (k BIGINT, grp BIGINT, seq BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN"); err != nil {
		return err
	}
	// Ascending seq insertion order keeps each shard's sealed segments
	// carrying tight, nearly disjoint seq zone maps — the layout a
	// time-ordered fact table gets for free.
	const total = 3 * 4 * 8192 // ~3 sealed segments per shard
	if _, err := s.Exec("BEGIN"); err != nil {
		return err
	}
	const batch = 512
	for lo := 0; lo < total; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO pfacts VALUES ")
		for i := lo; i < lo+batch; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)", i, i%8, i, i)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			return err
		}
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		return err
	}

	const query = "SELECT grp, count(*), sum(v) FROM pfacts WHERE seq < 8000 GROUP BY grp"
	const iters = 5
	c := db.Cluster()
	c.Fabric().SetBaseLatency(3 * time.Millisecond)
	defer c.Fabric().SetBaseLatency(0)
	var rows [][]string
	for _, degree := range []int{1, 2, 4} {
		for _, prune := range []bool{true, false} {
			c.ParallelDegree = degree
			c.DisableSegmentPrune = !prune
			before, err := c.TableScanStats("pfacts")
			if err != nil {
				return err
			}
			if _, err := s.Exec("BEGIN"); err != nil {
				return err
			}
			var shipped int64
			start := time.Now()
			for i := 0; i < iters; i++ {
				res, err := s.Exec(query)
				if err != nil {
					return err
				}
				shipped = res.RowsShipped
			}
			lat := time.Since(start) / iters
			if _, err := s.Exec("COMMIT"); err != nil {
				return err
			}
			after, err := c.TableScanStats("pfacts")
			if err != nil {
				return err
			}
			pruneLabel := "on"
			if !prune {
				pruneLabel = "off"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", degree),
				pruneLabel,
				lat.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", shipped),
				fmt.Sprintf("%d", (after.SegmentsScanned-before.SegmentsScanned)/iters),
				fmt.Sprintf("%d", (after.SegmentsPruned-before.SegmentsPruned)/iters),
				fmt.Sprintf("%d", (after.RowsScanned-before.RowsScanned)/iters),
			})
		}
	}
	c.ParallelDegree = 0
	c.DisableSegmentPrune = false
	benchfmt.Table(w, "Parallel intra-query execution — 98k-row columnar scatter agg @4 shards, 3ms/hop (E13)",
		[]string{"degree", "prune", "latency", "rows shipped", "segs scanned", "segs pruned", "rows scanned"}, rows)
	return nil
}

// HA (E14) measures per-shard standby replication: a TPC-C-like driver runs
// against 4 shards, each paired with a standby, under async then sync
// commit-log shipping. Mid-run one primary is killed and its standby
// promoted while the driver keeps going. The table compares throughput and
// the worst observed replication lag per phase and mode; each run then
// verifies zero committed-transaction loss (every order the driver saw
// commit is present after the failover, and the TPC-C invariants hold).
func HA(w io.Writer, txnsPerPhase int) error {
	var rows [][]string
	var notes []string
	for _, mode := range []repl.Mode{repl.ModeAsync, repl.ModeSync} {
		c, err := cluster.New(cluster.Config{DataNodes: 4, Mode: cluster.ModeGTMLite})
		if err != nil {
			return err
		}
		cfg := tpcc.DefaultConfig(8, 0.9)
		if err := tpcc.Load(c, cfg); err != nil {
			return err
		}
		m := repl.NewManager(c, repl.Config{Mode: mode})
		for _, p := range c.PrimaryIDs() {
			if _, err := m.AttachStandby(p); err != nil {
				return err
			}
		}
		drv := tpcc.NewDriver(c, cfg, 1)

		worstLag := func() int64 {
			var worst int64
			for _, p := range c.PrimaryIDs() {
				if l := m.Lag(p); l > worst {
					worst = l
				}
			}
			return worst
		}
		var maxLag int64
		phase := func(name string, run func() error) error {
			pre := drv.Stats
			maxLag = 0
			start := time.Now()
			if err := run(); err != nil {
				return err
			}
			elapsed := time.Since(start).Seconds()
			committed := drv.Stats.Committed - pre.Committed
			rows = append(rows, []string{
				mode.String(),
				name,
				benchfmt.F(float64(committed) / elapsed),
				fmt.Sprintf("%d", committed),
				fmt.Sprintf("%d", drv.Stats.Aborted-pre.Aborted),
				fmt.Sprintf("%d", maxLag),
			})
			return nil
		}
		sampled := func(n int) func() error {
			return func() error {
				for i := 0; i < n; i++ {
					if err := drv.RunOne(); err != nil {
						return err
					}
					if l := worstLag(); l > maxLag {
						maxLag = l
					}
				}
				return nil
			}
		}

		if err := phase("steady", sampled(txnsPerPhase)); err != nil {
			return err
		}

		// Kill a primary; its standby is promoted while the driver keeps
		// issuing transactions. Aborts against the dead shard during the
		// promotion window land in the aborted column.
		victim := 0
		var rep repl.FailoverReport
		var foErr error
		if err := phase("failover", func() error {
			c.SetDataNodeDown(victim, true)
			done := make(chan struct{})
			go func() {
				rep, foErr = m.Failover(victim)
				close(done)
			}()
			for {
				select {
				case <-done:
					return nil
				default:
					if err := drv.RunOne(); err != nil {
						return err
					}
					if l := worstLag(); l > maxLag {
						maxLag = l
					}
				}
			}
		}); err != nil {
			return err
		}
		if foErr != nil {
			return foErr
		}

		if err := phase("after", sampled(txnsPerPhase)); err != nil {
			return err
		}

		verified := "OK"
		if err := tpcc.CheckInvariants(c, cfg); err != nil {
			verified = err.Error()
		} else {
			res, err := c.NewSession().Exec("SELECT count(*) FROM orders")
			if err != nil {
				return err
			}
			if got := res.Rows[0][0].Int(); got != drv.Stats.NewOrders {
				verified = fmt.Sprintf("LOST TRANSACTIONS: %d orders stored, %d committed", got, drv.Stats.NewOrders)
			}
		}
		notes = append(notes, fmt.Sprintf(
			"%s: promoted dn%d -> dn%d in %s (%d buckets, %d in-doubt legs replayed, %d records shipped), zero-loss check %s",
			mode, rep.Primary, rep.Standby, rep.Elapsed.Round(time.Microsecond),
			rep.Buckets, rep.Replayed, m.RecordsShipped(), verified))
		m.Close()
	}
	benchfmt.Table(w, "Per-shard standby replication under TPC-C-like load, failover mid-run (E14)",
		[]string{"mode", "phase", "txn/s", "committed", "aborted", "max lag"}, rows)
	for _, n := range notes {
		fmt.Fprintln(w, n)
	}
	fmt.Fprintln(w)
	return nil
}

// NetworkCell is one E15 measurement: the fabric's per-type message
// counts for one transaction-mode x single-shard-fraction cell of a
// TPC-C-like run, normalized per committed transaction.
type NetworkCell struct {
	Mode        cluster.TxnMode
	SingleShard float64
	Committed   int64
	MultiShard  int64
	Stats       transport.Stats // raw counter delta over the run
	PerTxn      map[transport.MsgType]float64
	// GTMPerTxn is the GTM's message load (snapshot_req + gtm_round) per
	// committed transaction — the quantity GTM-lite exists to shrink.
	GTMPerTxn   float64
	TotalPerTxn float64
}

// Network (E15) regenerates the transport-layer message accounting table:
// a TPC-C-like driver runs under the conventional all-through-GTM design
// and under GTM-lite at 100 % and 90 % single-shard mixes, and the
// fabric's per-message-type counters (reset after load) are normalized
// per committed transaction. The paper's GTM-lite argument shows up
// directly as wire traffic: single-shard transactions skip every GTM
// round trip, so GTM-lite's gtm column collapses toward zero with the
// single-shard fraction while the baseline pays the GTM on every
// transaction regardless of mix.
func Network(w io.Writer, txns int) ([]NetworkCell, error) {
	shown := []transport.MsgType{
		transport.SnapshotReq, transport.GTMRound, transport.Write,
		transport.Prepare, transport.Commit, transport.Abort, transport.ScanFrag,
	}
	var cells []NetworkCell
	var rows [][]string
	for _, mode := range []cluster.TxnMode{cluster.ModeBaseline, cluster.ModeGTMLite} {
		for _, ss := range []float64{1.0, 0.9} {
			c, err := cluster.New(cluster.Config{DataNodes: 4, Mode: mode})
			if err != nil {
				return nil, err
			}
			cfg := tpcc.DefaultConfig(8, ss)
			if err := tpcc.Load(c, cfg); err != nil {
				return nil, err
			}
			fab := c.Fabric()
			fab.ResetCounters() // exclude the bulk load's traffic
			d := tpcc.NewDriver(c, cfg, 1)
			if err := d.Run(txns); err != nil {
				return nil, err
			}
			committed := d.Stats.Committed
			if committed == 0 {
				return nil, fmt.Errorf("experiments: E15 %s ss=%.0f%% committed nothing", mode, ss*100)
			}
			st := fab.Stats()
			cell := NetworkCell{
				Mode:        mode,
				SingleShard: ss,
				Committed:   committed,
				MultiShard:  d.Stats.MultiShard,
				Stats:       st,
				PerTxn:      map[transport.MsgType]float64{},
				TotalPerTxn: float64(st.Total()) / float64(committed),
			}
			for _, mt := range transport.MsgTypes() {
				cell.PerTxn[mt] = float64(st.Get(mt).Count) / float64(committed)
			}
			cell.GTMPerTxn = cell.PerTxn[transport.SnapshotReq] + cell.PerTxn[transport.GTMRound]
			cells = append(cells, cell)

			row := []string{mode.String(), fmt.Sprintf("%.0f%%", ss*100)}
			for _, mt := range shown {
				row = append(row, benchfmt.F(cell.PerTxn[mt]))
			}
			row = append(row, benchfmt.F(cell.GTMPerTxn), benchfmt.F(cell.TotalPerTxn))
			rows = append(rows, row)
		}
	}
	header := []string{"mode", "single-shard"}
	for _, mt := range shown {
		header = append(header, mt.String())
	}
	header = append(header, "gtm msgs/txn", "total msgs/txn")
	benchfmt.Table(w, "Messages per committed transaction by type — TPC-C-like @4 shards (E15)", header, rows)

	// Feed the measured wire traffic back into the simulator: perfsim's
	// hand-set network cost estimates are replaced by the fabric's counters
	// (the 90 % single-shard baseline cell carries both knobs).
	for _, cell := range cells {
		if cell.Mode == cluster.ModeBaseline && cell.SingleShard < 1.0 {
			p := perfsim.DefaultParams(4, perfsim.Baseline, cell.SingleShard).
				CalibrateFromFabric(cell.Stats, cell.Committed, cell.MultiShard)
			fmt.Fprintf(w, "perfsim calibration from fabric counters: BaselineExtraGTMOps=%d, MultiShardFanout=%d\n\n",
				p.BaselineExtraGTMOps, p.MultiShardFanout)
		}
	}
	return cells, nil
}

// GeoRepl measures the quorum-size / geo-latency trade-off (E16): every
// shard gets three standbys — one LAN, two behind a modeled WAN link —
// and a sync-mode insert workload runs once per (quorum K, WAN latency)
// cell. K=1 acks at the LAN standby and hides the WAN entirely; K=2 waits
// for one WAN round trip; K=3 for the slowest replica. Each cell finishes
// with a drain and a digest check of every replica against its primary
// (zero committed-record loss), and the fabric's per-link counters show
// the batched ReplShip traffic on the geo links.
func GeoRepl(w io.Writer, commitsPerCell int) error {
	wans := []time.Duration{0, 200 * time.Microsecond, time.Millisecond}
	var rows [][]string
	var note string
	for _, wan := range wans {
		for k := 1; k <= 3; k++ {
			c, err := cluster.New(cluster.Config{DataNodes: 2, Mode: cluster.ModeGTMLite})
			if err != nil {
				return err
			}
			s := c.NewSession()
			if _, err := s.Exec("CREATE TABLE geo (id BIGINT, v BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)"); err != nil {
				return err
			}
			c.Fabric().TrackLinks(true)
			m := repl.NewManager(c, repl.Config{Mode: repl.ModeSync, QuorumAcks: k, SyncTimeout: 250 * time.Millisecond})
			for _, p := range c.PrimaryIDs() {
				for i, link := range []transport.Latency{{}, {Base: wan, Jitter: wan / 4}, {Base: wan, Jitter: wan / 4}} {
					if _, err := m.AttachReplica(repl.ReplicaSpec{Upstream: p, Link: link}); err != nil {
						return fmt.Errorf("georepl: standby %d of dn%d: %w", i, p, err)
					}
				}
			}

			var total, worst time.Duration
			for i := 0; i < commitsPerCell; i++ {
				start := time.Now()
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO geo VALUES (%d, %d)", i, i)); err != nil {
					return err
				}
				el := time.Since(start)
				total += el
				if el > worst {
					worst = el
				}
			}

			// Drain every replica, then digest-verify the whole fleet.
			deadline := time.Now().Add(10 * time.Second)
			for _, p := range c.PrimaryIDs() {
				for m.Lag(p) > 0 {
					if time.Now().After(deadline) {
						return fmt.Errorf("georepl: K=%d wan=%v never drained (lag %d)", k, wan, m.Lag(p))
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			zeroLoss := "OK"
			st := m.Status()
			var batches int64
			for _, rs := range st.Replicas {
				batches += rs.Batches
				want, err := c.PartitionDigest("geo", rs.Primary, rs.Primary)
				if err != nil {
					return err
				}
				got, err := c.PartitionDigest("geo", rs.Node, rs.Primary)
				if err != nil {
					return err
				}
				if want != got {
					zeroLoss = fmt.Sprintf("DIVERGED dn%d", rs.Node)
				}
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d/3", k),
				wan.String(),
				fmt.Sprintf("%d", commitsPerCell),
				benchfmt.F(float64(total.Microseconds()) / float64(commitsPerCell)),
				benchfmt.F(float64(worst.Microseconds())),
				fmt.Sprintf("%d", batches),
				zeroLoss,
			})
			if k == 3 && wan == wans[len(wans)-1] {
				var links int
				var bytes int64
				for _, ls := range c.Fabric().LinkStats() {
					links++
					bytes += ls.Bytes
				}
				note = fmt.Sprintf("per-link fabric accounting (K=3, wan=%v cell): %d tracked links, %d payload bytes delivered, %d records shipped",
					wan, links, bytes, m.RecordsShipped())
			}
			m.Close()
		}
	}
	benchfmt.Table(w, "Geo-replication: sync quorum K vs commit latency, 3 standbys/shard, 2 behind the WAN (E16)",
		[]string{"quorum", "wan", "commits", "avg commit us", "max commit us", "ship batches", "zero-loss"}, rows)
	fmt.Fprintln(w, note)
	fmt.Fprintln(w)
	return nil
}

// FrontDoor drives the full client path — driver pool, wire protocol over
// the fabric, CN session objects, SLA admission gate — at user scale
// (E17): `sessions` concurrent driver sessions split into high/normal/low
// priority classes, first at light load and then all at once. The
// admission queue is sized so it overflows under the full burst: low and
// normal waiters are evicted or rejected (the driver retries with jittered
// backoff, then gives up), while the high class — which eviction can never
// touch and which always finds someone below it to displace — keeps its
// p99 bounded. The table reports offered load, per-class p99 and admitted
// throughput, and the shed rate; the experiment fails if any high-priority
// statement was shed or low-priority latency beats high under overload.
func FrontDoor(w io.Writer, sessions int) error {
	if sessions < 20 {
		sessions = 20
	}
	db, err := core.Open(core.Options{DataNodes: 4, HopLatency: 100 * time.Microsecond})
	if err != nil {
		return err
	}
	defer db.Close()
	srv, err := db.NewServer(server.Config{
		SLA: autonomous.SLA{TargetP95: 100 * time.Millisecond},
		Workload: autonomous.WorkloadConfig{
			InitialConcurrency: 32,
			// The floor keeps the gate from collapsing when scheduler
			// noise at 10k goroutines inflates the measured p95.
			MinConcurrency: 16,
			MaxConcurrency: 64,
			Window:         64,
			// The queue holds a quarter of the fleet: larger than the high
			// class (20%), far smaller than the full burst.
			QueueLimit: sessions / 4,
		},
	})
	if err != nil {
		return err
	}

	boot, err := driver.Open(driver.Fabric(srv), driver.Options{PoolSize: 1})
	if err != nil {
		return err
	}
	if _, err := boot.Exec("CREATE TABLE accounts (id BIGINT, balance BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)"); err != nil {
		return err
	}
	for i := 0; i < 64; i++ {
		if _, err := boot.Exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, 100)", i)); err != nil {
			return err
		}
	}
	boot.Close()

	classes := []struct {
		pri  autonomous.Priority
		frac float64
	}{
		{autonomous.PriorityHigh, 0.2},
		{autonomous.PriorityNormal, 0.3},
		{autonomous.PriorityLow, 0.5},
	}
	const stmtsPerSession = 3
	// highSLABound is the experiment's pass/fail line for the protected
	// class's tail latency under full overload.
	const highSLABound = 2 * time.Second

	type cell struct {
		sessions int
		ok       int64
		shed     int64
		failed   int64
		p99      time.Duration
		rate     float64
	}
	runPhase := func(total int) (map[autonomous.Priority]*cell, error) {
		cells := map[autonomous.Priority]*cell{}
		var mu sync.Mutex
		lats := map[autonomous.Priority][]float64{}
		var wg sync.WaitGroup
		var firstErr error
		start := time.Now()
		for _, cl := range classes {
			n := int(float64(total) * cl.frac)
			if n < 1 {
				n = 1
			}
			cells[cl.pri] = &cell{sessions: n}
			pool, err := driver.Open(driver.Fabric(srv), driver.Options{
				PoolSize:    n,
				Priority:    cl.pri,
				StmtTimeout: 10 * time.Second,
				RetryMax:    4,
				RetryBase:   200 * time.Microsecond,
				RetryCap:    5 * time.Millisecond,
				Seed:        int64(n) + int64(cl.pri),
			})
			if err != nil {
				return nil, err
			}
			defer pool.Close()
			c := cells[cl.pri]
			pri := cl.pri
			for s := 0; s < n; s++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for k := 0; k < stmtsPerSession; k++ {
						t0 := time.Now()
						_, err := pool.Exec("SELECT sum(balance) FROM accounts")
						lat := time.Since(t0)
						mu.Lock()
						switch {
						case err == nil:
							c.ok++
							lats[pri] = append(lats[pri], float64(lat))
						case errors.Is(err, driver.ErrShed):
							c.shed++
						default:
							c.failed++
							if firstErr == nil {
								firstErr = err
							}
						}
						mu.Unlock()
					}
				}(s)
			}
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for pri, c := range cells {
			c.p99 = time.Duration(autonomous.Percentile(lats[pri], 0.99))
			c.rate = float64(c.ok) / elapsed
		}
		if firstErr != nil {
			return cells, fmt.Errorf("frontdoor: statement failed: %w", firstErr)
		}
		return cells, nil
	}

	phases := []struct {
		name  string
		total int
	}{
		{"light", sessions / 10},
		{"overload", sessions},
	}
	var rows [][]string
	var overload map[autonomous.Priority]*cell
	for _, ph := range phases {
		cells, err := runPhase(ph.total)
		if err != nil {
			return err
		}
		if ph.name == "overload" {
			overload = cells
		}
		for _, cl := range classes {
			c := cells[cl.pri]
			offered := int64(c.sessions * stmtsPerSession)
			rows = append(rows, []string{
				ph.name,
				fmt.Sprintf("%d", c.sessions),
				cl.pri.String(),
				fmt.Sprintf("%d", offered),
				benchfmt.F(c.rate),
				fmt.Sprintf("%.2f", float64(c.p99.Microseconds())/1000),
				benchfmt.Pct(float64(c.shed) / float64(offered)),
			})
		}
	}
	benchfmt.Table(w, "Front door at user scale — SLA admission by priority class (E17)",
		[]string{"phase", "sessions", "class", "offered", "admitted/s", "p99 ms", "shed"}, rows)

	st := srv.Stats()
	fab := db.Cluster().Fabric().Stats()
	fmt.Fprintf(w, "server: %d sessions opened, %d statements, stmt-cache %d hits / %d misses; fabric client traffic: %d req (%d B), %d resp (%d B)\n\n",
		st.SessionsOpened, st.Statements, st.CacheHits, st.CacheMisses,
		fab[transport.ClientReq].Count, fab[transport.ClientReq].Bytes,
		fab[transport.ClientResp].Count, fab[transport.ClientResp].Bytes)

	// The SLA story the table must back up: the high class is never shed
	// or failed — every offered high-priority statement executed, with p99
	// inside the interactive bound — while overload is real (the gate
	// sacrificed low-priority statements to keep that true). Low's
	// apparent p99 is survivorship: only statements admitted before the
	// queue filled complete at all.
	hi := overload[autonomous.PriorityHigh]
	if shed := st.Workload.Class(autonomous.PriorityHigh).Shed; shed != 0 {
		return fmt.Errorf("frontdoor: %d high-priority statements shed (SLA violated)", shed)
	}
	if hi.shed != 0 || hi.failed != 0 {
		return fmt.Errorf("frontdoor: high-priority statements shed=%d failed=%d (SLA violated)", hi.shed, hi.failed)
	}
	if got, want := hi.ok, int64(hi.sessions*stmtsPerSession); got != want {
		return fmt.Errorf("frontdoor: only %d/%d high-priority statements served", got, want)
	}
	if hi.p99 > highSLABound {
		return fmt.Errorf("frontdoor: high-priority p99 %v exceeds the %v bound under overload", hi.p99, highSLABound)
	}
	if overload[autonomous.PriorityLow].shed == 0 {
		return fmt.Errorf("frontdoor: overload shed no low-priority statements — not actually overloaded")
	}
	return nil
}

// NDP regenerates E18 (near-data processing): scan_frag traffic and latency
// for a selective filter+TopN scatter query and a skewed hash join as the
// pushdown levels stack — off (row pull-up, the predicate a pruning hint
// only), exact DN-side filtering, projection shipping, per-fragment bounded
// TopN, and a sideways bloom filter built from the join's small side. Every
// level and every parallel degree must return byte-identical results; the
// run fails if full pushdown does not cut scan_frag bytes by at least 10x
// on the TopN query, or if the bloom semi-join does not ship strictly fewer
// bytes than the pull-up join.
func NDP(w io.Writer) error {
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		return err
	}
	defer db.Close()
	s := db.Session()
	// Eight columns so projection shipping has something to cut: the TopN
	// query touches two of them, the join three.
	if _, err := s.Exec("CREATE TABLE nfacts (k BIGINT, grp BIGINT, v BIGINT, p1 BIGINT, p2 BIGINT, p3 BIGINT, p4 BIGINT, p5 BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN"); err != nil {
		return err
	}
	const total = 4 * 8192 // ~one sealed segment per shard
	if _, err := s.Exec("BEGIN"); err != nil {
		return err
	}
	const batch = 512
	for lo := 0; lo < total; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO nfacts VALUES ")
		for i := lo; i < lo+batch; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d, %d, %d, %d, %d)", i, i%500, i, i, i, i, i, i)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			return err
		}
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		return err
	}
	// Small dimension side for the skewed join: 10 of the 500 grp values
	// match, so ~98% of fact rows can never find a partner — exactly the
	// shape a sideways bloom filter exists for. Row store, so the join also
	// exercises the NDP row path.
	if _, err := s.Exec("CREATE TABLE ndims (id BIGINT, tag BIGINT) DISTRIBUTE BY HASH(id)"); err != nil {
		return err
	}
	{
		var sb strings.Builder
		sb.WriteString("INSERT INTO ndims VALUES ")
		for i := 0; i < 10; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, i*100)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			return err
		}
	}

	c := db.Cluster()
	fab := c.Fabric()
	fab.SetBaseLatency(500 * time.Microsecond)
	fab.SetBandwidth(64e6) // byte-proportional hop cost so shipped bytes show up in latency
	defer fab.SetBaseLatency(0)
	defer fab.SetBandwidth(0)

	const scanQ = "SELECT k, v FROM nfacts WHERE v >= 31744 ORDER BY v DESC LIMIT 10"
	const joinQ = "SELECT f.k, f.v, d.tag FROM nfacts f, ndims d WHERE f.grp = d.id"

	// measure runs query iters times inside one transaction and returns the
	// per-query scan_frag byte delta (request + response legs), the rows
	// shipped to the CN, the mean latency, and a fingerprint of the result.
	measure := func(query string) (bytes int64, shipped int64, lat time.Duration, key string, err error) {
		const iters = 3
		if _, err = s.Exec("BEGIN"); err != nil {
			return
		}
		before := fab.Stats().Get(transport.ScanFrag)
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, e := s.Exec(query)
			if e != nil {
				err = e
				return
			}
			shipped = res.RowsShipped
			key = fmt.Sprintf("%v", res.Rows)
		}
		lat = time.Since(start) / iters
		after := fab.Stats().Get(transport.ScanFrag)
		if _, err = s.Exec("COMMIT"); err != nil {
			return
		}
		bytes = (after.Bytes - before.Bytes) / iters
		return
	}

	levels := []struct {
		name                   string
		ndp, proj, topn, bloom bool // disable flags
	}{
		{"off", true, true, true, true},
		{"filter", false, true, true, true},
		{"+projection", false, false, true, true},
		{"+topn", false, false, false, true},
		{"+bloom", false, false, false, false},
	}
	scanBytes := map[string]int64{}
	joinBytes := map[string]int64{}
	var scanKey, joinKey string
	var rows [][]string
	for _, lv := range levels {
		c.DisableNDP, c.DisableNDPProjection, c.DisableNDPTopN, c.DisableNDPBloom = lv.ndp, lv.proj, lv.topn, lv.bloom
		sBytes, sShipped, sLat, sKey, err := measure(scanQ)
		if err != nil {
			return err
		}
		jBytes, jShipped, jLat, jKey, err := measure(joinQ)
		if err != nil {
			return err
		}
		if scanKey == "" {
			scanKey, joinKey = sKey, jKey
		} else if sKey != scanKey || jKey != joinKey {
			return fmt.Errorf("ndp: results diverge at level %q from pushdown-off baseline", lv.name)
		}
		scanBytes[lv.name] = sBytes
		joinBytes[lv.name] = jBytes
		rows = append(rows, []string{
			lv.name,
			fmt.Sprintf("%d", sBytes),
			fmt.Sprintf("%d", sShipped),
			sLat.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", jBytes),
			fmt.Sprintf("%d", jShipped),
			jLat.Round(time.Microsecond).String(),
		})
	}
	c.DisableNDP, c.DisableNDPProjection, c.DisableNDPTopN, c.DisableNDPBloom = false, false, false, false

	// Full pushdown must stay byte-identical at every parallel degree: the
	// per-fragment bounded heaps ship their survivors in scan order, so the
	// CN merge cannot observe the degree.
	for _, degree := range []int{1, 2, 4} {
		c.ParallelDegree = degree
		_, _, _, sKey, err := measure(scanQ)
		if err != nil {
			return err
		}
		_, _, _, jKey, err := measure(joinQ)
		if err != nil {
			return err
		}
		if sKey != scanKey || jKey != joinKey {
			return fmt.Errorf("ndp: results diverge at parallel degree %d", degree)
		}
	}
	c.ParallelDegree = 0

	benchfmt.Table(w, "Near-data processing — pushdown levels, 32k-row x 8-col scatter @4 shards (E18)",
		[]string{"pushdown", "scan+topn B/q", "rows to CN", "latency", "join B/q", "rows to CN", "latency"}, rows)

	if off, full := scanBytes["off"], scanBytes["+topn"]; full <= 0 || off < 10*full {
		return fmt.Errorf("ndp: scan_frag bytes off=%d full=%d — wanted >= 10x reduction", off, full)
	}
	if pull, bloom := joinBytes["+topn"], joinBytes["+bloom"]; bloom >= pull {
		return fmt.Errorf("ndp: bloom join shipped %d B vs pull-up %d B — wanted strictly fewer", bloom, pull)
	}
	return nil
}

// HTAP (E19) validates the columnar analytical replicas (§II-III,
// GaussDB/Taurus) on the live engine in three phases: (A) identity — every
// analytical answer from the replicas matches the primary row path at
// every freshness setting and policy; (B) OLTP isolation — TPC-C
// throughput with concurrent analytics on the replicas vs the same
// analytics competing on the primaries; (C) the freshness-bound vs
// analytical-throughput trade-off under sustained write load.
func HTAP(w io.Writer, txns int) error {
	analyticalQs := []string{
		"SELECT count(*), sum(s_qty) FROM stock",
		"SELECT o_w_id, count(*), sum(o_lines) FROM orders GROUP BY o_w_id ORDER BY o_w_id",
		"SELECT sum(c_balance), sum(c_payments), count(*) FROM customer",
		"SELECT d_w_id, sum(d_ytd) FROM district GROUP BY d_w_id ORDER BY d_w_id",
	}
	cfg := tpcc.DefaultConfig(4, 0.9)

	// --- Phase A: identity at every freshness setting --------------------
	c, err := cluster.New(cluster.Config{DataNodes: 4})
	if err != nil {
		return err
	}
	if err := tpcc.Load(c, cfg); err != nil {
		return err
	}
	m, err := htap.Enable(c, htap.Config{})
	if err != nil {
		return err
	}
	d := tpcc.NewDriver(c, cfg, 0)
	if err := d.Run(txns / 2); err != nil {
		m.Close()
		return err
	}
	if err := m.WaitCaughtUp(10 * time.Second); err != nil {
		m.Close()
		return err
	}
	settings := []struct {
		bound  int64
		policy htap.Policy
	}{
		{0, htap.PolicyBlock},
		{0, htap.PolicyDegrade},
		{256, htap.PolicyBlock},
		{1 << 20, htap.PolicyBlock},
	}
	s := c.NewSession()
	for _, set := range settings {
		m.SetFreshnessBound(set.bound)
		m.SetPolicy(set.policy)
		for _, q := range analyticalQs {
			c.DisableHTAPReads = true
			want, err := s.Exec(q)
			if err != nil {
				m.Close()
				return err
			}
			c.DisableHTAPReads = false
			got, err := s.Exec(q)
			if err != nil {
				m.Close()
				return err
			}
			if fmt.Sprintf("%v", got.Rows) != fmt.Sprintf("%v", want.Rows) {
				m.Close()
				return fmt.Errorf("htap: replica answer diverges from primary at bound=%d policy=%s for %q",
					set.bound, set.policy, q)
			}
		}
	}
	offloadedA := m.Status().QueriesOffloaded
	if offloadedA == 0 {
		m.Close()
		return errors.New("htap: no statement offloaded to the replicas in phase A")
	}
	m.Close()

	// --- Phase B: OLTP throughput, analytics on primary vs replicas ------
	type phaseB struct {
		name      string
		enable    bool // HTAP replicas on
		analytics bool // concurrent analytical scanner on
	}
	configs := []phaseB{
		{"tpcc alone", false, false},
		{"analytics on primary", false, true},
		{"analytics on replicas", true, true},
	}
	tput := map[string]float64{}
	var rowsB [][]string
	for _, pb := range configs {
		c, err := cluster.New(cluster.Config{DataNodes: 4})
		if err != nil {
			return err
		}
		if err := tpcc.Load(c, cfg); err != nil {
			return err
		}
		var m *htap.Manager
		if pb.enable {
			if m, err = htap.Enable(c, htap.Config{MaxLagRecords: 1 << 20}); err != nil {
				return err
			}
		}
		stopScan := make(chan struct{})
		var scanned int64
		var wg sync.WaitGroup
		if pb.analytics {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sess := c.NewSession()
				for i := 0; ; i++ {
					select {
					case <-stopScan:
						return
					default:
					}
					if _, err := sess.Exec(analyticalQs[i%len(analyticalQs)]); err == nil {
						scanned++
					}
				}
			}()
		}
		d := tpcc.NewDriver(c, cfg, 1)
		start := time.Now()
		err = d.Run(txns)
		elapsed := time.Since(start)
		close(stopScan)
		wg.Wait()
		if err != nil {
			return err
		}
		invariant := "OK"
		if err := tpcc.CheckInvariants(c, cfg); err != nil {
			invariant = err.Error()
		}
		offloaded := int64(0)
		if m != nil {
			if err := m.WaitCaughtUp(10 * time.Second); err != nil {
				return err
			}
			st := m.Status()
			offloaded = st.QueriesOffloaded
			// Zero-divergence check: every replica partition digest equals
			// its primary's.
			for _, rs := range st.Replicas {
				for _, tbl := range c.DistributedTableNames() {
					want, err := c.PartitionDigest(tbl, rs.DN, rs.DN)
					if err != nil {
						return err
					}
					got, err := m.ReplicaDigest(tbl, rs.DN)
					if err != nil {
						return err
					}
					if got != want {
						return fmt.Errorf("htap: %s replica on dn%d diverged from primary", tbl, rs.DN)
					}
				}
			}
			m.Close()
		}
		tput[pb.name] = float64(d.Stats.Committed) / elapsed.Seconds()
		rowsB = append(rowsB, []string{
			pb.name,
			fmt.Sprintf("%d", d.Stats.Committed),
			benchfmt.F(tput[pb.name]),
			fmt.Sprintf("%d", scanned),
			fmt.Sprintf("%d", offloaded),
			invariant,
		})
	}
	benchfmt.Table(w, "HTAP — TPC-C with concurrent analytics, primary vs columnar replicas (E19)",
		[]string{"configuration", "committed", "txn/s", "analytical q", "offloaded", "invariants"}, rowsB)
	if tput["analytics on replicas"] < 0.5*tput["tpcc alone"] {
		return fmt.Errorf("htap: OLTP throughput %.0f txn/s with replica analytics vs %.0f alone — regression beyond noise",
			tput["analytics on replicas"], tput["tpcc alone"])
	}

	// --- Phase C: freshness bound vs analytical throughput ---------------
	c, err = cluster.New(cluster.Config{DataNodes: 4})
	if err != nil {
		return err
	}
	if err := tpcc.Load(c, cfg); err != nil {
		return err
	}
	m, err = htap.Enable(c, htap.Config{BlockTimeout: 250 * time.Millisecond})
	if err != nil {
		return err
	}
	defer m.Close()

	stopWrites := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		wd := tpcc.NewDriver(c, cfg, 2)
		for {
			select {
			case <-stopWrites:
				return
			default:
			}
			_ = wd.RunOne()
		}
	}()

	sweep := []struct {
		bound  int64
		policy htap.Policy
	}{
		{0, htap.PolicyBlock},
		{0, htap.PolicyDegrade},
		{64, htap.PolicyBlock},
		{1024, htap.PolicyBlock},
		{1 << 20, htap.PolicyBlock},
	}
	var rowsC [][]string
	sess := c.NewSession()
	const probes = 40
	for _, set := range sweep {
		m.SetFreshnessBound(set.bound)
		m.SetPolicy(set.policy)
		before := m.Status()
		start := time.Now()
		for i := 0; i < probes; i++ {
			if _, err := sess.Exec(analyticalQs[i%len(analyticalQs)]); err != nil {
				close(stopWrites)
				wwg.Wait()
				return err
			}
		}
		elapsed := time.Since(start)
		after := m.Status()
		rowsC = append(rowsC, []string{
			fmt.Sprintf("%d", set.bound),
			set.policy.String(),
			benchfmt.F(float64(probes) / elapsed.Seconds()),
			fmt.Sprintf("%d", after.QueriesOffloaded-before.QueriesOffloaded),
			fmt.Sprintf("%d", after.QueriesDegraded-before.QueriesDegraded),
			fmt.Sprintf("%d", after.MaxLagRecords),
		})
	}
	close(stopWrites)
	wwg.Wait()
	benchfmt.Table(w, "HTAP — freshness bound vs analytical throughput under write load (E19)",
		[]string{"bound (recs)", "policy", "analytical q/s", "offloaded", "degraded", "lag"}, rowsC)

	if err := m.WaitCaughtUp(10 * time.Second); err != nil {
		return err
	}
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		return fmt.Errorf("htap: invariants after phase C: %w", err)
	}
	return m.Err()
}

// Joins (E20) validates the distributed join paths (§II-A MPP joins) on a
// 4-shard star schema: per-strategy fabric bytes and latency, result
// identity across every strategy and parallel degree, and the
// statistics-free planner's microsecond budget on a 6-table join. Two
// reductions are enforced, not just reported: the co-located join and the
// shuffle join must each move strictly fewer fabric bytes than pulling
// both inputs to the coordinator.
func Joins(w io.Writer) error {
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		return err
	}
	defer db.Close()
	s := db.Session()
	c := db.Cluster()

	// Star schema: two fact tables sharing a distribution key (the
	// co-located pair) and a dimension distributed on its own key. The
	// filter on jfact keeps join results far smaller than the inputs, so
	// where the join runs dominates the byte count.
	if _, err := s.Exec("CREATE TABLE jfact (k BIGINT, d BIGINT, v BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN"); err != nil {
		return err
	}
	if _, err := s.Exec("CREATE TABLE jfact2 (k BIGINT, w BIGINT) DISTRIBUTE BY HASH(k) USING COLUMN"); err != nil {
		return err
	}
	if _, err := s.Exec("CREATE TABLE jdim (id BIGINT, tag BIGINT) DISTRIBUTE BY HASH(id)"); err != nil {
		return err
	}
	const total = 8192
	if _, err := s.Exec("BEGIN"); err != nil {
		return err
	}
	const batch = 512
	for lo := 0; lo < total; lo += batch {
		var f1, f2 strings.Builder
		f1.WriteString("INSERT INTO jfact VALUES ")
		f2.WriteString("INSERT INTO jfact2 VALUES ")
		for i := lo; i < lo+batch; i++ {
			if i > lo {
				f1.WriteByte(',')
				f2.WriteByte(',')
			}
			fmt.Fprintf(&f1, "(%d, %d, %d)", i, i%64, i)
			fmt.Fprintf(&f2, "(%d, %d)", i, i*2)
		}
		if _, err := s.Exec(f1.String()); err != nil {
			return err
		}
		if _, err := s.Exec(f2.String()); err != nil {
			return err
		}
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		return err
	}
	{
		var sb strings.Builder
		sb.WriteString("INSERT INTO jdim VALUES ")
		for i := 0; i < 64; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, i*10)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			return err
		}
	}
	for _, tb := range []string{"jfact", "jfact2", "jdim"} {
		if err := c.Analyze(tb); err != nil {
			return err
		}
	}

	fab := c.Fabric()
	fab.SetBaseLatency(500 * time.Microsecond)
	fab.SetBandwidth(64e6)
	defer fab.SetBaseLatency(0)
	defer fab.SetBandwidth(0)

	// alignedQ joins on the shared distribution key (the co-located
	// shape). skewQ joins a non-distribution column against the small
	// dimension (the broadcast shape; the CN fallback's bloom semi-join
	// also does well here, which is the honest comparison). shufQ joins
	// two large tables on non-aligned keys where every build key exists —
	// a bloom prunes nothing, so repartitioning is the only way to avoid
	// hauling both inputs to the coordinator.
	const alignedQ = "SELECT f.k, f.v, g.w FROM jfact f, jfact2 g WHERE f.k = g.k AND f.v < 400"
	const skewQ = "SELECT f.v, d.tag FROM jfact f, jdim d WHERE f.d = d.id AND f.v < 400"
	const shufQ = "SELECT f.v, g.w FROM jfact f, jfact2 g WHERE f.d = g.w AND f.v < 400"

	// measure runs one query and returns total fabric bytes, the
	// shuffle/broadcast components, mean latency, and a result digest
	// (sorted — join output order is undefined across strategies).
	measure := func(query string) (bytes, shufB, bcastB int64, lat time.Duration, key string, err error) {
		const iters = 3
		if _, err = s.Exec("BEGIN"); err != nil {
			return
		}
		before := fab.Stats()
		start := time.Now()
		var res *core.Result
		for i := 0; i < iters; i++ {
			if res, err = s.Exec(query); err != nil {
				return
			}
		}
		lat = time.Since(start) / iters
		d := fab.Stats().Sub(before)
		if _, err = s.Exec("COMMIT"); err != nil {
			return
		}
		bytes = d.TotalBytes() / iters
		shufB = d.Get(transport.ShufflePart).Bytes / iters
		bcastB = d.Get(transport.BcastBuild).Bytes / iters
		lines := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.String()
			}
			lines[i] = strings.Join(parts, "|")
		}
		sort.Strings(lines)
		key = fmt.Sprintf("%d:%s", len(lines), strings.Join(lines, ";"))
		return
	}

	policies := []struct {
		name string
		pol  plan.DistJoinPolicy
	}{
		{"cn-fallback", plan.DistJoinPolicy{Disable: true}},
		{"auto", plan.DistJoinPolicy{}},
		{"colocated", plan.DistJoinPolicy{Force: plan.DistColocated}},
		{"broadcast", plan.DistJoinPolicy{Force: plan.DistBroadcast}},
		{"shuffle", plan.DistJoinPolicy{Force: plan.DistShuffle}},
	}
	type cell struct{ bytes, shufB, bcastB int64 }
	queries := []struct {
		name string
		sql  string
	}{{"aligned", alignedQ}, {"smalldim", skewQ}, {"repart", shufQ}}
	cells := map[string]map[string]cell{}
	keys := map[string]string{}
	var rows [][]string
	for _, p := range policies {
		c.JoinPolicy = p.pol
		cells[p.name] = map[string]cell{}
		line := []string{p.name}
		var shufB, bcastB int64
		for _, q := range queries {
			b, sB, cB, lat, key, err := measure(q.sql)
			if err != nil {
				return fmt.Errorf("joins: %s %s: %w", p.name, q.name, err)
			}
			if ref, ok := keys[q.name]; !ok {
				keys[q.name] = key
			} else if key != ref {
				return fmt.Errorf("joins: %s results diverge under policy %q from cn-fallback", q.name, p.name)
			}
			cells[p.name][q.name] = cell{b, sB, cB}
			shufB += sB
			bcastB += cB
			line = append(line, fmt.Sprintf("%d", b), lat.Round(time.Microsecond).String())
		}
		line = append(line, fmt.Sprintf("%d", shufB), fmt.Sprintf("%d", bcastB))
		rows = append(rows, line)
	}

	// Identity across parallel degrees under the automatic policy.
	c.JoinPolicy = plan.DistJoinPolicy{}
	for _, degree := range []int{1, 2, 4} {
		c.ParallelDegree = degree
		for _, q := range queries {
			_, _, _, _, key, err := measure(q.sql)
			if err != nil {
				return err
			}
			if key != keys[q.name] {
				return fmt.Errorf("joins: %s results diverge at parallel degree %d", q.name, degree)
			}
		}
	}
	c.ParallelDegree = 0

	benchfmt.Table(w, "Distributed joins — strategy vs fabric bytes, 2x8k facts + 64-row dim @4 shards (E20)",
		[]string{"strategy", "aligned B/q", "latency", "smalldim B/q", "latency", "repart B/q", "latency", "shuffle B", "bcast B"}, rows)

	// The reductions the strategies exist for, enforced strictly: each
	// strategy must beat hauling both inputs to the coordinator on the
	// query shape it is built for.
	if co, cn := cells["colocated"]["aligned"].bytes, cells["cn-fallback"]["aligned"].bytes; co >= cn {
		return fmt.Errorf("joins: co-located moved %d B vs %d B at the CN — wanted strictly fewer", co, cn)
	}
	if sh, cn := cells["shuffle"]["repart"].bytes, cells["cn-fallback"]["repart"].bytes; sh >= cn {
		return fmt.Errorf("joins: shuffle moved %d B vs %d B at the CN — wanted strictly fewer", sh, cn)
	}
	if cells["shuffle"]["repart"].shufB == 0 {
		return fmt.Errorf("joins: forced shuffle sent no shuffle_part bytes")
	}
	if cells["broadcast"]["smalldim"].bcastB == 0 {
		return fmt.Errorf("joins: forced broadcast sent no bcast_build bytes")
	}

	// Planning stays inside the microsecond budget: a 6-table join chain
	// must plan (route + order + compile) in under 100µs on a warm run.
	for ti := 0; ti < 6; ti++ {
		if _, err := s.Exec(fmt.Sprintf("CREATE TABLE jp%d (k%d BIGINT, v%d BIGINT) DISTRIBUTE BY HASH(k%d)", ti, ti, ti, ti)); err != nil {
			return err
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO jp%d VALUES ", ti)
		for i := 0; i < 32; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d)", i%8, i)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			return err
		}
	}
	sixQ := "SELECT count(*) FROM jp0, jp1, jp2, jp3, jp4, jp5" +
		" WHERE jp0.k0 = jp1.k1 AND jp1.k1 = jp2.k2 AND jp2.k2 = jp3.k3 AND jp3.k3 = jp4.k4 AND jp4.k4 = jp5.k5"
	fab.SetBaseLatency(0)
	fab.SetBandwidth(0)
	minPlan := time.Duration(1 << 62)
	for i := 0; i < 100; i++ {
		res, err := s.Exec(sixQ)
		if err != nil {
			return err
		}
		if res.PlanTime > 0 && res.PlanTime < minPlan {
			minPlan = res.PlanTime
		}
	}
	fmt.Fprintf(w, "6-table join planning: best of 100 = %v (budget 100µs)\n\n", minPlan.Round(time.Microsecond))
	if minPlan > 100*time.Microsecond {
		return fmt.Errorf("joins: 6-table planning took %v, budget is 100µs", minPlan)
	}
	return nil
}

// Autopilot (E21) closes the autonomic loop end to end and proves it safe
// by construction: the same deterministic script of idempotent absolute-value
// UPDATEs — 4:1 of the traffic aimed at a handful of hot buckets on one DN —
// runs twice on a 4-DN sync-replicated cluster with the autopilot ticking.
// The chaos run additionally kills one primary a third of the way in and
// revives it at two thirds; the only management calls in either run are
// ap.Tick(). The autopilot must on its own promote a standby, re-enroll the
// returned ex-primary, and spread the hot buckets until the per-window heat
// ratio falls to TargetRatio. Because every UPDATE writes an absolute value,
// retries across the failover window are idempotent, so the two runs must end
// with bit-identical table digests (TableChecksum is placement-independent:
// bucket moves cannot mask, or fake, lost transactions).
func Autopilot(w io.Writer, ops int) error {
	const tableRows = 512
	const batch = 48 // ops per autopilot tick: one heat window

	// The scripted key/value sequence is fixed up front so both runs apply
	// the same update multiset; final[] lets the settle phase keep traffic
	// (and therefore heat windows) flowing without changing table contents.
	type update struct {
		key int64
		val int64
	}
	script := make([]update, ops)
	final := map[int64]int64{}

	type runStats struct {
		name      string
		retries   int
		moves     int
		failovers int64
		reenrolls int
		quorumOps int
		ratio     float64
		wall      time.Duration
		digest    cluster.TableDigest
	}

	run := func(name string, chaos bool) (runStats, error) {
		st := runStats{name: name}
		db, err := core.Open(core.Options{DataNodes: 4})
		if err != nil {
			return st, err
		}
		defer db.Close()
		c := db.Cluster()
		s := db.Session()
		if _, err := s.Exec("CREATE TABLE hotacct (id BIGINT, balance BIGINT) DISTRIBUTE BY HASH(id)"); err != nil {
			return st, err
		}
		for lo := 0; lo < tableRows; lo += 128 {
			var sb strings.Builder
			sb.WriteString("INSERT INTO hotacct VALUES ")
			for id := lo; id < lo+128; id++ {
				if id > lo {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "(%d, 0)", id)
			}
			if _, err := s.Exec(sb.String()); err != nil {
				return st, err
			}
		}

		// The hash layout is seeded and identical across runs: pick the DN
		// owning the most ids and aim the skew at six of its buckets.
		owners := c.BucketOwners()
		perDN := map[int]int{}
		for id := 0; id < tableRows; id++ {
			perDN[owners[cluster.BucketOf(types.NewInt(int64(id)))]]++
		}
		hotDN := -1
		for dn, n := range perDN {
			if hotDN < 0 || n > perDN[hotDN] || (n == perDN[hotDN] && dn < hotDN) {
				hotDN = dn
			}
		}
		var hotKeys []int64
		seen := map[int]bool{}
		for id := 0; id < tableRows && len(hotKeys) < 6; id++ {
			b := cluster.BucketOf(types.NewInt(int64(id)))
			if owners[b] == hotDN && !seen[b] {
				seen[b] = true
				hotKeys = append(hotKeys, int64(id))
			}
		}
		if len(hotKeys) < 2 {
			return st, fmt.Errorf("autopilot: hot DN owns %d distinct buckets, need >= 2", len(hotKeys))
		}
		pick := func(rng *rand.Rand) int64 {
			if rng.Float64() < 4.0/7.0 { // hot DN carries 4x each peer's share
				return hotKeys[rng.Intn(len(hotKeys))]
			}
			return int64(rng.Intn(tableRows))
		}
		if script[0].val == 0 { // first run builds the shared script
			rng := rand.New(rand.NewSource(21))
			for i := range script {
				script[i] = update{key: pick(rng), val: int64(i + 1)}
				final[script[i].key] = script[i].val
			}
		}

		ha, err := db.EnableHA(repl.Config{
			Mode:             repl.ModeSync,
			QuorumAcks:       1,
			SyncTimeout:      50 * time.Millisecond,
			StandbysPerShard: 1,
		})
		if err != nil {
			return st, err
		}
		ap := db.NewAutopilot(autonomous.SLA{TargetP95: 200 * time.Millisecond})
		ap.MinHeat = 16
		ap.Actions.SetCooldown("move-bucket", 10*time.Millisecond)
		ap.Actions.SetCooldown("set-quorum", 50*time.Millisecond)
		ap.Actions.SetCooldown("reattach-orphan", 20*time.Millisecond)
		ap.Actions.SetCooldown("reenroll-standby", 20*time.Millisecond)

		victim := -1
		for _, p := range c.PrimaryIDs() {
			if p != hotDN {
				victim = p
				break
			}
		}

		// Retry-until-commit: absolute values make re-execution after an
		// ambiguous outcome harmless, and each retry yields to the autopilot
		// so the loop itself performs the failover.
		exec := func(u update) error {
			stmt := fmt.Sprintf("UPDATE hotacct SET balance = %d WHERE id = %d", u.val, u.key)
			deadline := time.Now().Add(30 * time.Second)
			for {
				if _, err := s.Exec(stmt); err == nil {
					return nil
				}
				st.retries++
				ap.Tick()
				if time.Now().After(deadline) {
					return fmt.Errorf("autopilot(%s): update on id %d never committed", name, u.key)
				}
				time.Sleep(time.Millisecond)
			}
		}

		start := time.Now()
		for i, u := range script {
			if chaos && i == len(script)/3 {
				c.SetDataNodeDown(victim, true)
			}
			if chaos && i == 2*len(script)/3 {
				c.SetDataNodeDown(victim, false)
			}
			if err := exec(u); err != nil {
				return st, err
			}
			if i%batch == batch-1 {
				ap.Tick()
			}
		}

		// Settle: keep the heat windows alive with idempotent re-writes of
		// each key's final value (table contents never change) until the
		// loop has spread the skew and restored full redundancy.
		converged := func() bool {
			tot, _ := ap.Info.Last("cluster.bucket_heat.total")
			ratio, ok := ap.Info.Last("cluster.bucket_heat.ratio")
			if !ok || tot < float64(ap.MinHeat) || ratio > ap.TargetRatio {
				return false
			}
			st.ratio = ratio
			if ap.Actions.Count("move-bucket") == 0 {
				return false
			}
			if chaos && (ha.Failovers() < 1 || ap.Actions.Count("reenroll-standby") < 1) {
				return false
			}
			prims := ha.GroupPrimaries()
			if len(prims) != 4 {
				return false
			}
			for _, p := range prims {
				if len(ha.Replicas(p)) < 1 || len(ha.Orphans(p)) > 0 {
					return false
				}
			}
			return true
		}
		settle := rand.New(rand.NewSource(99))
		deadline := time.Now().Add(45 * time.Second)
		for {
			ap.Tick()
			if converged() {
				break
			}
			if time.Now().After(deadline) {
				return st, fmt.Errorf("autopilot(%s): no convergence: moves=%d failovers=%d reenrolls=%d ratio=%.2f",
					name, ap.Actions.Count("move-bucket"), ha.Failovers(),
					ap.Actions.Count("reenroll-standby"), st.ratio)
			}
			for j := 0; j < batch; j++ {
				k := pick(settle)
				if err := exec(update{key: k, val: final[k]}); err != nil {
					return st, err
				}
			}
		}
		st.wall = time.Since(start)

		// Quiesce: land any in-flight bucket move and drain replication so
		// the digest sees a stable, fully replicated cluster.
		for dl := time.Now().Add(15 * time.Second); ap.MoveInFlight(); {
			if time.Now().After(dl) {
				return st, fmt.Errorf("autopilot(%s): bucket move never landed", name)
			}
			time.Sleep(time.Millisecond)
		}
		for _, p := range ha.GroupPrimaries() {
			for dl := time.Now().Add(15 * time.Second); !ha.Synced(p); {
				if time.Now().After(dl) {
					return st, fmt.Errorf("autopilot(%s): group dn%d never drained (lag %d)", name, p, ha.Lag(p))
				}
				ap.Tick()
				time.Sleep(time.Millisecond)
			}
		}
		for _, rs := range ha.Status().Replicas {
			if rs.Broken {
				return st, fmt.Errorf("autopilot(%s): replica dn%d of dn%d still broken", name, rs.Node, rs.Primary)
			}
		}

		st.moves = ap.Actions.Count("move-bucket")
		st.failovers = ha.Failovers()
		st.reenrolls = ap.Actions.Count("reenroll-standby")
		st.quorumOps = ap.Actions.Count("set-quorum")
		st.digest, err = c.TableChecksum("hotacct")
		return st, err
	}

	ref, err := run("fault-free", false)
	if err != nil {
		return err
	}
	cha, err := run("primary-kill", true)
	if err != nil {
		return err
	}

	var rows [][]string
	for _, st := range []runStats{ref, cha} {
		rows = append(rows, []string{
			st.name,
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", st.retries),
			fmt.Sprintf("%d", st.moves),
			fmt.Sprintf("%d", st.failovers),
			fmt.Sprintf("%d", st.reenrolls),
			fmt.Sprintf("%d", st.quorumOps),
			benchfmt.F(st.ratio),
			fmt.Sprintf("%dr/%016x", st.digest.Rows, st.digest.Sum),
		})
	}
	benchfmt.Table(w, "Autopilot closed loop — 4:1 hot-bucket skew, sync HA, zero operator calls (E21)",
		[]string{"run", "ops", "retries", "moves", "failovers", "reenrolls", "set-quorum", "final ratio", "digest"}, rows)
	fmt.Fprintf(w, "heat ratio converged to <= %.2f in both runs; all management actions were autopilot ticks\n", 1.5)
	if cha.digest != ref.digest {
		return fmt.Errorf("autopilot: chaos digest %+v != fault-free digest %+v — committed work was lost or duplicated", cha.digest, ref.digest)
	}
	if cha.failovers < 1 || cha.reenrolls < 1 {
		return fmt.Errorf("autopilot: chaos run recorded %d failovers / %d reenrolls, want >= 1 of each", cha.failovers, cha.reenrolls)
	}
	fmt.Fprintf(w, "digest identity: chaos == fault-free (%d rows, sum %016x) — zero loss through kill, failover, re-enroll, and %d bucket moves\n\n",
		cha.digest.Rows, cha.digest.Sum, cha.moves)
	return nil
}
