package experiments

import (
	"io"
	"testing"

	"repro/internal/cluster"
)

// TestNetworkGTMLiteFewerGTMMessages is E15's acceptance check: GTM-lite
// must cost strictly fewer GTM round-trip messages per committed
// transaction than the all-through-GTM baseline at both the 100 % and the
// 90 % single-shard mix.
func TestNetworkGTMLiteFewerGTMMessages(t *testing.T) {
	cells, err := Network(io.Discard, 200)
	if err != nil {
		t.Fatal(err)
	}
	byMode := func(mode cluster.TxnMode, ss float64) *NetworkCell {
		for i := range cells {
			if cells[i].Mode == mode && cells[i].SingleShard == ss {
				return &cells[i]
			}
		}
		t.Fatalf("no E15 cell for %s ss=%.2f", mode, ss)
		return nil
	}
	for _, ss := range []float64{1.0, 0.9} {
		base := byMode(cluster.ModeBaseline, ss)
		lite := byMode(cluster.ModeGTMLite, ss)
		if base.GTMPerTxn <= 0 {
			t.Fatalf("ss=%.0f%%: baseline recorded no GTM messages (%.3f/txn)", ss*100, base.GTMPerTxn)
		}
		if lite.GTMPerTxn >= base.GTMPerTxn {
			t.Fatalf("ss=%.0f%%: gtm-lite %.3f GTM msgs/txn, not strictly fewer than baseline %.3f",
				ss*100, lite.GTMPerTxn, base.GTMPerTxn)
		}
		if lite.TotalPerTxn >= base.TotalPerTxn {
			t.Errorf("ss=%.0f%%: gtm-lite total %.3f msgs/txn >= baseline %.3f",
				ss*100, lite.TotalPerTxn, base.TotalPerTxn)
		}
	}
	// The 100 % single-shard GTM-lite workload must skip the GTM entirely.
	if g := byMode(cluster.ModeGTMLite, 1.0).GTMPerTxn; g != 0 {
		t.Errorf("pure single-shard gtm-lite still sent %.3f GTM msgs/txn", g)
	}
}

// TestFrontDoorShedsLowProtectsHigh is E17's acceptance check at smoke
// scale: the run itself fails unless every high-priority statement was
// served within the bound while overload shed low-priority ones.
func TestFrontDoorShedsLowProtectsHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("drives hundreds of concurrent sessions")
	}
	if err := FrontDoor(io.Discard, 200); err != nil {
		t.Fatal(err)
	}
}
