package sqlx

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any scalar expression node.
type Expr interface {
	expr()
	String() string
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// StorageKind selects the table's physical layout (§II: hybrid row-column
// storage).
type StorageKind uint8

// Storage layouts.
const (
	StorageRow StorageKind = iota
	StorageColumn
)

func (s StorageKind) String() string {
	if s == StorageColumn {
		return "COLUMN"
	}
	return "ROW"
}

// CreateTable is CREATE TABLE ... [DISTRIBUTE BY HASH(col) | REPLICATION]
// [USING ROW|COLUMN].
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string
	// DistKey is the hash-distribution column; empty means replicated to
	// every data node (small dimension tables).
	DistKey    string
	Replicated bool
	Storage    StorageKind
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(c.Name)
	sb.WriteString(" (")
	for i, col := range c.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(col.Name + " " + col.Kind.String())
	}
	if len(c.PrimaryKey) > 0 {
		sb.WriteString(", PRIMARY KEY (" + strings.Join(c.PrimaryKey, ", ") + ")")
	}
	sb.WriteString(")")
	if c.DistKey != "" {
		sb.WriteString(" DISTRIBUTE BY HASH(" + c.DistKey + ")")
	} else if c.Replicated {
		sb.WriteString(" DISTRIBUTE BY REPLICATION")
	}
	sb.WriteString(" USING " + c.Storage.String())
	return sb.String()
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmt() {}

func (d *DropTable) String() string {
	if d.IfExists {
		return "DROP TABLE IF EXISTS " + d.Name
	}
	return "DROP TABLE " + d.Name
}

// Insert is INSERT INTO name [(cols)] VALUES (...),(...) | INSERT ... select.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *Select // non-nil for INSERT INTO ... SELECT
}

func (*Insert) stmt() {}

func (i *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + i.Table)
	if len(i.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(i.Columns, ", ") + ")")
	}
	if i.Query != nil {
		sb.WriteString(" " + i.Query.String())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for c, e := range row {
			if c > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Assignment is one SET col = expr clause.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE name SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmt() {}

func (u *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + u.Table + " SET ")
	for i, a := range u.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column + " = " + a.Value.String())
	}
	if u.Where != nil {
		sb.WriteString(" WHERE " + u.Where.String())
	}
	return sb.String()
}

// Delete is DELETE FROM name [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// TxControl is BEGIN / COMMIT / ROLLBACK.
type TxControl struct {
	Verb string // "BEGIN", "COMMIT", "ROLLBACK"
}

func (*TxControl) stmt() {}

func (t *TxControl) String() string { return t.Verb }

// Explain wraps a statement for plan display.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// CTE is one WITH entry: name [(cols)] AS (select).
type CTE struct {
	Name    string
	Columns []string
	Query   *Select
}

// SelectItem is one projection target.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
}

func (s SelectItem) String() string {
	if s.Star {
		if s.Table != "" {
			return s.Table + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a FROM-clause item: base table, subquery, table function, or
// join tree.
type TableRef interface {
	tableRef()
	String() string
}

// BaseTable references a stored table or CTE by name.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

func (b *BaseTable) String() string {
	if b.Alias != "" {
		return b.Name + " AS " + b.Alias
	}
	return b.Name
}

// SubqueryRef is (select) AS alias.
type SubqueryRef struct {
	Query *Select
	Alias string
}

func (*SubqueryRef) tableRef() {}

func (s *SubqueryRef) String() string { return "(" + s.Query.String() + ") AS " + s.Alias }

// TableFunc is a multi-model table expression: gtimeseries(select ...) or
// ggraph(<gremlin>) (§II-B Example 1). For ggraph the traversal source is
// kept as raw text and compiled by internal/graph.
type TableFunc struct {
	Name    string  // "gtimeseries" | "ggraph" | future engines
	Query   *Select // for gtimeseries: the inner relational query
	RawArg  string  // for ggraph: the Gremlin traversal text
	Alias   string
	Columns []string // optional output column aliases
}

func (*TableFunc) tableRef() {}

func (t *TableFunc) String() string {
	var arg string
	if t.Query != nil {
		arg = t.Query.String()
	} else {
		arg = t.RawArg
	}
	s := t.Name + "(" + arg + ")"
	if t.Alias != "" {
		s += " AS " + t.Alias
	}
	return s
}

// JoinRef is an explicit join tree node.
type JoinRef struct {
	Kind        JoinKind
	Left, Right TableRef
	On          Expr
}

func (*JoinRef) tableRef() {}

func (j *JoinRef) String() string {
	s := j.Left.String() + " " + j.Kind.String() + " " + j.Right.String()
	if j.On != nil {
		s += " ON " + j.On.String()
	}
	return s
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOp is one UNION [ALL] arm chained onto a Select.
type SetOp struct {
	All   bool
	Query *Select
}

// Select is a full query block, possibly with UNION arms (SetOps). ORDER
// BY / LIMIT / OFFSET apply to the whole union result.
type Select struct {
	CTEs     []CTE
	Distinct bool
	Items    []SelectItem
	// From holds comma-separated FROM items (implicit cross joins);
	// explicit JOINs are JoinRef nodes inside.
	From    []TableRef
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
	Offset  int64
	// SetOps chains UNION [ALL] arms evaluated left to right.
	SetOps []SetOp
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var sb strings.Builder
	if len(s.CTEs) > 0 {
		sb.WriteString("WITH ")
		for i, c := range s.CTEs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			if len(c.Columns) > 0 {
				sb.WriteString(" (" + strings.Join(c.Columns, ", ") + ")")
			}
			sb.WriteString(" AS (" + c.Query.String() + ")")
		}
		sb.WriteString(" ")
	}
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	for _, so := range s.SetOps {
		if so.All {
			sb.WriteString(" UNION ALL ")
		} else {
			sb.WriteString(" UNION ")
		}
		sb.WriteString(so.Query.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	if s.Offset > 0 {
		sb.WriteString(fmt.Sprintf(" OFFSET %d", s.Offset))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Literal is a constant datum.
type Literal struct {
	Value types.Datum
}

func (*Literal) expr() {}

func (l *Literal) String() string {
	if l.Value.Kind() == types.KindString {
		return "'" + strings.ReplaceAll(l.Value.Str(), "'", "''") + "'"
	}
	return l.Value.String()
}

// ColumnRef is a possibly-qualified column reference.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// BinaryOp operators.
const (
	OpEq     = "="
	OpNe     = "<>"
	OpLt     = "<"
	OpLe     = "<="
	OpGt     = ">"
	OpGe     = ">="
	OpAdd    = "+"
	OpSub    = "-"
	OpMul    = "*"
	OpDiv    = "/"
	OpMod    = "%"
	OpAnd    = "AND"
	OpOr     = "OR"
	OpLike   = "LIKE"
	OpConcat = "||"
)

// BinaryOp is a binary expression.
type BinaryOp struct {
	Op          string
	Left, Right Expr
}

func (*BinaryOp) expr() {}

func (b *BinaryOp) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// UnaryOp is NOT x or -x.
type UnaryOp struct {
	Op    string // "NOT" | "-"
	Child Expr
}

func (*UnaryOp) expr() {}

func (u *UnaryOp) String() string { return "(" + u.Op + " " + u.Child.String() + ")" }

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	Child Expr
	Not   bool
}

func (*IsNull) expr() {}

func (i *IsNull) String() string {
	if i.Not {
		return "(" + i.Child.String() + " IS NOT NULL)"
	}
	return "(" + i.Child.String() + " IS NULL)"
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	Child Expr
	List  []Expr
	Not   bool
}

func (*InList) expr() {}

func (i *InList) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	op := " IN "
	if i.Not {
		op = " NOT IN "
	}
	return "(" + i.Child.String() + op + "(" + strings.Join(parts, ", ") + "))"
}

// Between is x BETWEEN lo AND hi.
type Between struct {
	Child, Lo, Hi Expr
	Not           bool
}

func (*Between) expr() {}

func (b *Between) String() string {
	op := " BETWEEN "
	if b.Not {
		op = " NOT BETWEEN "
	}
	return "(" + b.Child.String() + op + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// FuncCall is a scalar or aggregate function call. Star marks count(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) expr() {}

func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToLower(f.Name) + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return strings.ToLower(f.Name) + "(" + d + strings.Join(parts, ", ") + ")"
}

// Subquery is a scalar subquery in an expression position.
type Subquery struct {
	Query *Select
}

func (*Subquery) expr() {}

func (s *Subquery) String() string { return "(" + s.Query.String() + ")" }

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []Expr
	Thens   []Expr
	Else    Expr
}

func (*CaseExpr) expr() {}

func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.String())
	}
	for i := range c.Whens {
		sb.WriteString(" WHEN " + c.Whens[i].String() + " THEN " + c.Thens[i].String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// IntervalLit is INTERVAL '<n> <unit>' rendered as a duration in
// nanoseconds; it evaluates to a BIGINT so timestamp arithmetic stays in
// the integer domain.
type IntervalLit struct {
	Nanos int64
	Text  string // original text for display
}

func (*IntervalLit) expr() {}

func (i *IntervalLit) String() string { return "INTERVAL '" + i.Text + "'" }

// AggregateFuncs lists recognized aggregate function names (lower-case).
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether the expression tree contains an aggregate
// function call at its top level or anywhere below (excluding subqueries).
func IsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && AggregateFuncs[strings.ToLower(f.Name)] {
			found = true
			return false
		}
		if _, ok := x.(*Subquery); ok {
			return false
		}
		return true
	})
	return found
}

// SplitConjuncts flattens an expression into its top-level AND conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryOp); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// WalkExpr visits e and its children in pre-order. The visitor returns
// false to skip a node's children.
func WalkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryOp:
		WalkExpr(x.Left, visit)
		WalkExpr(x.Right, visit)
	case *UnaryOp:
		WalkExpr(x.Child, visit)
	case *IsNull:
		WalkExpr(x.Child, visit)
	case *InList:
		WalkExpr(x.Child, visit)
		for _, c := range x.List {
			WalkExpr(c, visit)
		}
	case *Between:
		WalkExpr(x.Child, visit)
		WalkExpr(x.Lo, visit)
		WalkExpr(x.Hi, visit)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	case *CaseExpr:
		WalkExpr(x.Operand, visit)
		for i := range x.Whens {
			WalkExpr(x.Whens[i], visit)
			WalkExpr(x.Thens[i], visit)
		}
		WalkExpr(x.Else, visit)
	}
}
