package sqlx

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a1, 'it''s', 3.5e2 FROM t -- comment\n/* block */ WHERE x <> 2;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a1", ",", "it's", ",", "3.5e2", "FROM", "t", "WHERE", "x", "<>", "2", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count = %d (%v), want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[3] != TokString || kinds[5] != TokNumber {
		t.Errorf("unexpected kinds %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("select 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Tokenize("select a # b"); err == nil {
		t.Error("illegal char should fail")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE IF NOT EXISTS olap.t1 (
		a1 BIGINT, b1 DOUBLE, c1 TEXT, d1 TIMESTAMP,
		PRIMARY KEY (a1)
	) DISTRIBUTE BY HASH(a1) USING COLUMN`)
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "olap.t1" || !ct.IfNotExists || len(ct.Columns) != 4 ||
		ct.DistKey != "a1" || ct.Storage != StorageColumn ||
		len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "a1" {
		t.Errorf("bad parse: %+v", ct)
	}
	if ct.Columns[1].Kind != types.KindFloat || ct.Columns[3].Kind != types.KindTime {
		t.Errorf("bad column kinds: %+v", ct.Columns)
	}
}

func TestParseCreateTableReplicated(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE dim (k INT PRIMARY KEY, v VARCHAR(32) NOT NULL) DISTRIBUTE BY REPLICATION")
	ct := stmt.(*CreateTable)
	if !ct.Replicated || ct.DistKey != "" || len(ct.PrimaryKey) != 1 {
		t.Errorf("bad parse: %+v", ct)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Errorf("bad parse: %+v", ins)
	}
	stmt = mustParse(t, "INSERT INTO t SELECT * FROM s WHERE x > 0")
	ins = stmt.(*Insert)
	if ins.Query == nil {
		t.Error("INSERT..SELECT lost its query")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'z' WHERE id = 7").(*Update)
	if up.Table != "t" || len(up.Set) != 2 || up.Where == nil {
		t.Errorf("bad update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE a BETWEEN 1 AND 5").(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("bad delete: %+v", del)
	}
	if _, ok := del.Where.(*Between); !ok {
		t.Errorf("where is %T, want Between", del.Where)
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt := mustParse(t, `SELECT DISTINCT t1.a, count(*) AS n, sum(b)
		FROM olap.t1 AS t1 JOIN olap.t2 t2 ON t1.a1 = t2.a2
		WHERE t1.b1 > 10 AND t2.c IN (1, 2, 3)
		GROUP BY t1.a HAVING count(*) > 1
		ORDER BY n DESC, t1.a LIMIT 10 OFFSET 5`)
	sel := stmt.(*Select)
	if !sel.Distinct || len(sel.Items) != 3 || sel.Limit != 10 || sel.Offset != 5 {
		t.Errorf("bad select: %+v", sel)
	}
	j, ok := sel.From[0].(*JoinRef)
	if !ok || j.Kind != JoinInner || j.On == nil {
		t.Fatalf("bad join: %+v", sel.From[0])
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc {
		t.Errorf("bad clauses: %+v", sel)
	}
}

func TestParsePaperTableIQuery(t *testing.T) {
	// The exact query from §II-C used for Table I.
	stmt := mustParse(t, "select * from OLAP.t1, OLAP.t2 where OLAP.t1.a1=OLAP.t2.a2 and OLAP.t1.b1 > 10")
	sel := stmt.(*Select)
	if len(sel.From) != 2 {
		t.Fatalf("want 2 from items, got %d", len(sel.From))
	}
	if !sel.Items[0].Star {
		t.Error("want star projection")
	}
	// Qualified refs like OLAP.t1.a1 parse as Table="OLAP", Column="t1"...
	// our dialect treats two-part refs only, so the test query uses the
	// alias-free form; verify the WHERE tree shape is an AND.
	b, ok := sel.Where.(*BinaryOp)
	if !ok || b.Op != OpAnd {
		t.Fatalf("where = %v", sel.Where)
	}
}

func TestParseExample1Shape(t *testing.T) {
	// A dialect-adjusted version of the paper's Example 1 (§II-B).
	src := `with cars (carid) as (select carid from
	            gtimeseries(select ts, carid, juncid from high_speed_view
	                        where now() - ts < INTERVAL '30 minutes') AS g),
	     suspects (cid) as (select cid from
	            ggraph('g.V().has(cid,11111).inE(call).has(ts,gt(20180601)).count().gt(3)') AS gg)
	select s.cid, c.carid
	from suspects s, cars c
	where s.cid = (select cid from car2cid as cc where cc.carid = c.carid)`
	stmt := mustParse(t, src)
	sel := stmt.(*Select)
	if len(sel.CTEs) != 2 {
		t.Fatalf("want 2 CTEs, got %d", len(sel.CTEs))
	}
	tf0, ok := sel.CTEs[0].Query.From[0].(*TableFunc)
	if !ok || tf0.Name != "gtimeseries" || tf0.Query == nil {
		t.Fatalf("cte0 from = %+v", sel.CTEs[0].Query.From[0])
	}
	tf1, ok := sel.CTEs[1].Query.From[0].(*TableFunc)
	if !ok || tf1.Name != "ggraph" || !strings.Contains(tf1.RawArg, "g.V()") {
		t.Fatalf("cte1 from = %+v", sel.CTEs[1].Query.From[0])
	}
	// Scalar subquery in WHERE.
	eq, ok := sel.Where.(*BinaryOp)
	if !ok || eq.Op != OpEq {
		t.Fatalf("where = %v", sel.Where)
	}
	if _, ok := eq.Right.(*Subquery); !ok {
		t.Fatalf("rhs = %T, want Subquery", eq.Right)
	}
}

func TestParseGgraphUnquoted(t *testing.T) {
	stmt := mustParse(t, "select * from ggraph(g.V().has(kind,'person').out(knows).count()) AS g")
	sel := stmt.(*Select)
	tf := sel.From[0].(*TableFunc)
	if !strings.HasPrefix(tf.RawArg, "g.V()") || !strings.Contains(tf.RawArg, "count()") {
		t.Errorf("raw arg = %q", tf.RawArg)
	}
}

func TestParseTxControl(t *testing.T) {
	for _, src := range []string{"BEGIN", "COMMIT", "ROLLBACK", "ABORT"} {
		stmt := mustParse(t, src)
		tc, ok := stmt.(*TxControl)
		if !ok {
			t.Fatalf("%s parsed to %T", src, stmt)
		}
		want := src
		if src == "ABORT" {
			want = "ROLLBACK"
		}
		if tc.Verb != want {
			t.Errorf("%s -> verb %s", src, tc.Verb)
		}
	}
}

func TestParseExplain(t *testing.T) {
	stmt := mustParse(t, "EXPLAIN ANALYZE SELECT 1")
	ex := stmt.(*Explain)
	if !ex.Analyze {
		t.Error("lost ANALYZE")
	}
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Errorf("inner = %T", ex.Stmt)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 = 7 AND NOT false OR x IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	// Top must be OR.
	or, ok := e.(*BinaryOp)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %v", e)
	}
	and, ok := or.Left.(*BinaryOp)
	if !ok || and.Op != OpAnd {
		t.Fatalf("or.left = %v", or.Left)
	}
	isn, ok := or.Right.(*IsNull)
	if !ok || !isn.Not {
		t.Fatalf("or.right = %v", or.Right)
	}
	eq := and.Left.(*BinaryOp)
	if eq.Op != OpEq {
		t.Fatalf("and.left = %v", and.Left)
	}
	add := eq.Left.(*BinaryOp)
	if add.Op != OpAdd {
		t.Fatalf("eq.left = %v", eq.Left)
	}
	if mul := add.Right.(*BinaryOp); mul.Op != OpMul {
		t.Fatalf("add.right = %v", add.Right)
	}
}

func TestParseNegativeNumbersFold(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*Literal)
	if !ok || lit.Value.Int() != -5 {
		t.Fatalf("got %v", e)
	}
	e, err = ParseExpr("-2.5")
	if err != nil {
		t.Fatal(err)
	}
	if lit := e.(*Literal); lit.Value.Float() != -2.5 {
		t.Fatalf("got %v", e)
	}
}

func TestParseIntervals(t *testing.T) {
	e, err := ParseExpr("INTERVAL '30 minutes'")
	if err != nil {
		t.Fatal(err)
	}
	iv := e.(*IntervalLit)
	if iv.Nanos != 30*60*1e9 {
		t.Errorf("nanos = %d", iv.Nanos)
	}
	for text, wantErr := range map[string]bool{
		"1 hour": false, "2 days": false, "500 milliseconds": false,
		"fast": true, "1 parsec": true, "x minutes": true,
	} {
		_, err := ParseInterval(text)
		if (err != nil) != wantErr {
			t.Errorf("ParseInterval(%q) err=%v, wantErr=%v", text, err, wantErr)
		}
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CaseExpr)
	if c.Operand != nil || len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("bad case: %+v", c)
	}
	e, err = ParseExpr("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 2 || c.Else != nil {
		t.Errorf("bad case: %+v", c)
	}
}

func TestParseMulti(t *testing.T) {
	stmts, err := ParseMulti("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);; SELECT * FROM a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELEC 1",
		"SELECT FROM",
		"CREATE TABLE t (a FROBTYPE)",
		"INSERT INTO t VALUES (1,",
		"SELECT * FROM (SELECT 1)",             // derived table needs alias
		"SELECT * FROM t WHERE a BETWEEN 1 OR", // malformed between
		"UPDATE t SET",
		"SELECT 1 2 3 garbage (",
		"CASE WHEN END",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	// String() output must itself re-parse to an equivalent String().
	srcs := []string{
		"SELECT a, b + 1 AS c FROM t WHERE a = 1 ORDER BY b DESC LIMIT 3",
		"INSERT INTO t (a) VALUES (1), (2)",
		"UPDATE t SET a = 2 WHERE b = 'x'",
		"DELETE FROM t WHERE a IS NULL",
		"CREATE TABLE t (a BIGINT, b TEXT) DISTRIBUTE BY HASH(a) USING ROW",
		"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2",
		"WITH c AS (SELECT a FROM t) SELECT * FROM c AS x",
	}
	for _, src := range srcs {
		s1 := mustParse(t, src).String()
		s2 := mustParse(t, s1).String()
		if s1 != s2 {
			t.Errorf("round trip mismatch:\n  first:  %s\n  second: %s", s1, s2)
		}
	}
}

func TestIsAggregate(t *testing.T) {
	agg, _ := ParseExpr("sum(a) + 1")
	if !IsAggregate(agg) {
		t.Error("sum(a)+1 is aggregate")
	}
	plain, _ := ParseExpr("a + 1")
	if IsAggregate(plain) {
		t.Error("a+1 is not aggregate")
	}
	sub, _ := ParseExpr("(select sum(a) from t)")
	if IsAggregate(sub) {
		t.Error("aggregates inside subqueries do not count")
	}
}

func TestStatementStringCoverage(t *testing.T) {
	// Round-trip a broad statement sample through String() -> Parse() to
	// pin the renderer for every AST node kind.
	srcs := []string{
		"DROP TABLE t",
		"DROP TABLE IF EXISTS t",
		"EXPLAIN SELECT 1",
		"EXPLAIN ANALYZE SELECT 1",
		"BEGIN",
		"CREATE TABLE r (a INT) DISTRIBUTE BY REPLICATION USING COLUMN",
		"SELECT t.* FROM t AS t",
		"SELECT * FROM (SELECT 1 AS x) AS d",
		"SELECT * FROM a AS a CROSS JOIN b AS b",
		"SELECT * FROM a AS a LEFT JOIN b AS b ON a.x = b.y",
		"SELECT * FROM gtimeseries(SELECT ts FROM s) AS g",
		"SELECT * FROM ggraph('g.V().count()') AS g",
		"SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT a FROM t WHERE a NOT IN (1, 2)",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE NOT (a LIKE 'x%')",
		"SELECT a FROM t WHERE a IN (SELECT b FROM u)",
		"SELECT a FROM t WHERE a = (SELECT max(b) FROM u)",
		"SELECT count(DISTINCT a) FROM t",
		"SELECT a FROM t UNION SELECT b FROM u",
		"SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 3",
		"SELECT a || 'x' FROM t",
		"SELECT INTERVAL '5 minutes'",
		"INSERT INTO t SELECT a FROM u",
		"UPDATE t SET a = 1",
		"DELETE FROM t",
	}
	for _, src := range srcs {
		s1 := mustParse(t, src).String()
		s2 := mustParse(t, s1).String()
		if s1 != s2 {
			t.Errorf("round trip diverged for %q:\n  %s\n  %s", src, s1, s2)
		}
	}
}

func TestTokenStringAndLexerCorners(t *testing.T) {
	toks, err := Tokenize(`select "Quoted" /* block
comment */ x -- eol`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "Quoted" || toks[1].Kind != TokIdent {
		t.Errorf("quoted ident = %+v", toks[1])
	}
	if got := toks[len(toks)-1].String(); got != "<eof>" {
		t.Errorf("eof token = %q", got)
	}
	if got := (Token{Kind: TokString, Text: "s"}).String(); got != "'s'" {
		t.Errorf("string token = %q", got)
	}
	// Unterminated block comment and quoted ident.
	if toks, err := Tokenize("a /* never ends"); err != nil || len(toks) != 2 {
		t.Errorf("unterminated comment: %v %v", toks, err)
	}
	if _, err := Tokenize(`"never ends`); err == nil {
		t.Error("unterminated quoted ident must fail")
	}
	// Exponent without digits falls back.
	toks, _ = Tokenize("1e foo")
	if toks[0].Text != "1" {
		t.Errorf("bad exponent handling: %v", toks)
	}
}
