// Package sqlx implements the SQL dialect of the FI-MPPDB reproduction: a
// practical subset of ANSI SQL (DDL, DML, SELECT with joins, grouping,
// CTEs) extended with the paper's multi-model table expressions
// gtimeseries(...) and ggraph('...') (§II-B Example 1).
//
// The package provides a hand-written lexer and recursive-descent parser
// producing the AST consumed by internal/plan.
package sqlx

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString // single-quoted literal, quotes stripped
	TokOp     // operators and punctuation: = <> <= >= < > + - * / % ( ) , . ;
)

// Token is one lexical unit with its position for error messages.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

// keywords recognized by the dialect. Identifiers matching these
// (case-insensitively) are lexed as TokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "AS": true, "ON": true, "JOIN": true,
	"INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "IF": true, "EXISTS": true,
	"PRIMARY": true, "KEY": true, "DISTRIBUTE": true, "HASH": true,
	"REPLICATION": true, "USING": true, "ROW": true, "COLUMN": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "ABORT": true,
	"WITH": true, "DISTINCT": true, "EXPLAIN": true, "ANALYZE": true,
	"INTERVAL": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "UNION": true, "ALL": true,
}

// Lexer tokenizes SQL input.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for unterminated strings and
// illegal characters.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	case c >= '0' && c <= '9':
		l.pos++
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		// exponent
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			save := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a single quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{}, fmt.Errorf("sqlx: unterminated string literal at offset %d", start)
	case c == '"':
		// Double-quoted identifier.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return Token{}, fmt.Errorf("sqlx: unterminated quoted identifier at offset %d", start)
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	default:
		// Multi-character operators first.
		for _, op := range []string{"<>", "<=", ">=", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("=<>+-*/%(),.;", rune(c)) {
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sqlx: illegal character %q at offset %d", c, start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += nl + 1
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize lexes the whole input, mainly for tests and debugging.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
