package sqlx

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/types"
)

// Parser is a recursive-descent parser over the lexer's token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.eatOp(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

// ParseMulti parses a semicolon-separated script.
func ParseMulti(src string) ([]Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for {
		for p.eatOp(";") {
		}
		if p.atEOF() {
			return out, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
	}
}

// ParseExpr parses a standalone scalar expression (used by tests and by the
// GMDB SQL surface).
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

func newParser(src string) (*Parser, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, src: src}, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlx: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

// eatKeyword consumes the keyword if present.
func (p *Parser) eatKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) eatOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.eatOp(op) {
		return p.errorf("expected %q, found %s", op, p.peek())
	}
	return nil
}

// parseIdent accepts an identifier or a non-reserved-in-context keyword.
func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.next()
		return t.Text, nil
	}
	// Allow a few keywords as identifiers where unambiguous (e.g. a column
	// named "time" lexes as TokIdent already since TIME isn't a keyword;
	// KEY/ROW/COLUMN may appear as names).
	if t.Kind == TokKeyword {
		switch t.Text {
		case "KEY", "ROW", "COLUMN", "HASH", "SET", "VALUES", "ALL":
			p.next()
			return strings.ToLower(t.Text), nil
		}
	}
	return "", p.errorf("expected identifier, found %s", t)
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement, found %s", t)
	}
	switch t.Text {
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT", "WITH":
		return p.parseSelect()
	case "BEGIN":
		p.next()
		return &TxControl{Verb: "BEGIN"}, nil
	case "COMMIT":
		p.next()
		return &TxControl{Verb: "COMMIT"}, nil
	case "ROLLBACK", "ABORT":
		p.next()
		return &TxControl{Verb: "ROLLBACK"}, nil
	case "EXPLAIN":
		p.next()
		analyze := p.eatKeyword("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	default:
		return nil, p.errorf("unsupported statement %s", t.Text)
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTable{Storage: StorageRow}
	if p.eatKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if p.eatKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if !p.eatOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			tname, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			kind, err := types.KindFromName(tname)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			// Swallow optional length like VARCHAR(32).
			if p.eatOp("(") {
				for !p.eatOp(")") {
					if p.atEOF() {
						return nil, p.errorf("unterminated type length")
					}
					p.next()
				}
			}
			// Swallow optional NOT NULL / PRIMARY KEY column constraint.
			if p.eatKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
			}
			if p.eatKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: col, Kind: kind})
		}
		if !p.eatOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatKeyword("DISTRIBUTE"):
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			if p.eatKeyword("REPLICATION") {
				ct.Replicated = true
				continue
			}
			if err := p.expectKeyword("HASH"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ct.DistKey = col
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		case p.eatKeyword("USING"):
			switch {
			case p.eatKeyword("ROW"):
				ct.Storage = StorageRow
			case p.eatKeyword("COLUMN"):
				ct.Storage = StorageColumn
			default:
				return nil, p.errorf("expected ROW or COLUMN after USING")
			}
		default:
			return ct, nil
		}
	}
}

func (p *Parser) parseDropTable() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.eatKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	ins := &Insert{}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	ins.Table = name
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		p.next()
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if t := p.peek(); t.Kind == TokKeyword && (t.Text == "SELECT" || t.Text == "WITH") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.eatOp(",") {
			return ins, nil
		}
	}
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	up := &Update{}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	up.Table = name
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	del := &Delete{}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	del.Table = name
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// parseQualifiedName parses ident[.ident] as a dotted table name (the paper
// uses schema-qualified names like OLAP.t1).
func (p *Parser) parseQualifiedName() (string, error) {
	first, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	if p.eatOp(".") {
		second, err := p.parseIdent()
		if err != nil {
			return "", err
		}
		return first + "." + second, nil
	}
	return first, nil
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

func (p *Parser) parseSelect() (*Select, error) {
	sel := &Select{Limit: -1}
	if p.eatKeyword("WITH") {
		for {
			name, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			cte := CTE{Name: name}
			if p.peek().Kind == TokOp && p.peek().Text == "(" {
				p.next()
				for {
					col, err := p.parseIdent()
					if err != nil {
						return nil, err
					}
					cte.Columns = append(cte.Columns, col)
					if !p.eatOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			cte.Query = q
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			sel.CTEs = append(sel.CTEs, cte)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelectCore(sel); err != nil {
		return nil, err
	}
	// UNION [ALL] arms.
	for p.eatKeyword("UNION") {
		arm := &Select{Limit: -1}
		all := p.eatKeyword("ALL")
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		if err := p.parseSelectCore(arm); err != nil {
			return nil, err
		}
		sel.SetOps = append(sel.SetOps, SetOp{All: all, Query: arm})
	}
	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				it.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, it)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("LIMIT") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.eatKeyword("OFFSET") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

// parseSelectCore parses the SELECT..HAVING body of one query block (the
// part a UNION arm repeats); the caller has already consumed SELECT.
func (p *Parser) parseSelectCore(sel *Select) error {
	sel.Distinct = p.eatKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		sel.Items = append(sel.Items, item)
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("FROM") {
		for {
			ref, err := p.parseTableRefWithJoins()
			if err != nil {
				return err
			}
			sel.From = append(sel.From, ref)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Where = w
	}
	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Having = h
	}
	return nil
}

func (p *Parser) parseIntLit() (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errorf("expected integer, found %s", t)
	}
	p.next()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.peek().Kind == TokOp && p.peek().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if p.peek().Kind == TokIdent && p.peek2().Kind == TokOp && p.peek2().Text == "." {
		// Could be t.* — look two ahead.
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
			tbl := p.next().Text
			p.next() // .
			p.next() // *
			return SelectItem{Star: true, Table: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRefWithJoins() (TableRef, error) {
	left, err := p.parseTableRefPrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.eatKeyword("JOIN"):
			kind = JoinInner
		case p.eatKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinInner
		case p.eatKeyword("LEFT"):
			p.eatKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeft
		case p.eatKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTableRefPrimary()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Kind: kind, Left: left, Right: right}
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

// tableFuncs are multi-model table expressions recognized in FROM position.
var tableFuncs = map[string]bool{"gtimeseries": true, "ggraph": true, "gspatial": true}

func (p *Parser) parseTableRefPrimary() (TableRef, error) {
	t := p.peek()
	// (select) AS alias
	if t.Kind == TokOp && t.Text == "(" {
		p.next()
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Query: q}
		p.eatKeyword("AS")
		alias, err := p.parseIdent()
		if err != nil {
			return nil, p.errorf("derived table requires an alias")
		}
		ref.Alias = alias
		return ref, nil
	}
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table reference, found %s", t)
	}
	// Table function?
	if tableFuncs[strings.ToLower(t.Text)] && p.peek2().Kind == TokOp && p.peek2().Text == "(" {
		name := strings.ToLower(p.next().Text)
		p.next() // (
		tf := &TableFunc{Name: name}
		if name == "gtimeseries" {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			tf.Query = q
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			// ggraph/gspatial take a raw traversal string or raw token run
			// up to the matching close paren.
			raw, err := p.captureRawArg()
			if err != nil {
				return nil, err
			}
			tf.RawArg = raw
		}
		if p.eatKeyword("AS") {
			alias, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			tf.Alias = alias
		} else if p.peek().Kind == TokIdent {
			tf.Alias = p.next().Text
		}
		return tf, nil
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	ref := &BaseTable{Name: name}
	if p.eatKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// captureRawArg consumes tokens (already lexed) until the matching ")" and
// returns the original source text between the parens. A single string
// literal argument is returned unquoted, so both ggraph('g.V()...') and
// ggraph(g.V()...) work.
func (p *Parser) captureRawArg() (string, error) {
	if p.peek().Kind == TokString && p.peek2().Kind == TokOp && p.peek2().Text == ")" {
		s := p.next().Text
		p.next() // )
		return s, nil
	}
	depth := 1
	start := p.peek().Pos
	end := start
	for depth > 0 {
		t := p.peek()
		if t.Kind == TokEOF {
			return "", p.errorf("unterminated table function argument")
		}
		if t.Kind == TokOp {
			switch t.Text {
			case "(":
				depth++
			case ")":
				depth--
				if depth == 0 {
					end = t.Pos
					p.next()
					return strings.TrimSpace(p.src[start:end]), nil
				}
			}
		}
		p.next()
	}
	return "", p.errorf("unterminated table function argument")
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.eatKeyword("NOT") {
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", Child: child}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.eatKeyword("IS") {
		not := p.eatKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Child: left, Not: not}, nil
	}
	// [NOT] IN / BETWEEN / LIKE
	not := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		if n := p.peek2(); n.Kind == TokKeyword && (n.Text == "IN" || n.Text == "BETWEEN" || n.Text == "LIKE") {
			p.next()
			not = true
		}
	}
	switch {
	case p.eatKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if t := p.peek(); t.Kind == TokKeyword && (t.Text == "SELECT" || t.Text == "WITH") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			// x IN (subquery) is represented as x = ANY via InList with a
			// single Subquery element; the planner expands it.
			il := &InList{Child: left, List: []Expr{&Subquery{Query: q}}, Not: not}
			return il, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{Child: left, List: list, Not: not}, nil
	case p.eatKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{Child: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.eatKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryOp{Op: OpLike, Left: left, Right: pat}
		if not {
			e = &UnaryOp{Op: "NOT", Child: e}
		}
		return e, nil
	}
	for {
		t := p.peek()
		if t.Kind != TokOp {
			return left, nil
		}
		var op string
		switch t.Text {
		case "=", "<", ">", "<=", ">=":
			op = t.Text
		case "<>", "!=":
			op = OpNe
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "||" {
			op = OpConcat
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: t.Text, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.peek().Kind == TokOp && p.peek().Text == "-" {
		p.next()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := child.(*Literal); ok {
			switch lit.Value.Kind() {
			case types.KindInt:
				return &Literal{Value: types.NewInt(-lit.Value.Int())}, nil
			case types.KindFloat:
				return &Literal{Value: types.NewFloat(-lit.Value.Float())}, nil
			}
		}
		return &UnaryOp{Op: "-", Child: child}, nil
	}
	if p.peek().Kind == TokOp && p.peek().Text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

// intervalUnits maps unit names (singular, lower-case) to nanoseconds.
var intervalUnits = map[string]int64{
	"nanosecond":  1,
	"microsecond": int64(time.Microsecond),
	"millisecond": int64(time.Millisecond),
	"second":      int64(time.Second),
	"minute":      int64(time.Minute),
	"hour":        int64(time.Hour),
	"day":         24 * int64(time.Hour),
	"week":        7 * 24 * int64(time.Hour),
}

// ParseInterval parses "30 minutes"-style interval text into nanoseconds.
func ParseInterval(text string) (int64, error) {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(text)))
	if len(fields) != 2 {
		return 0, fmt.Errorf("sqlx: bad interval %q (want '<n> <unit>')", text)
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlx: bad interval count %q", fields[0])
	}
	unit := strings.TrimSuffix(fields[1], "s")
	ns, ok := intervalUnits[unit]
	if !ok {
		return 0, fmt.Errorf("sqlx: bad interval unit %q", fields[1])
	}
	return n * ns, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case TokString:
		p.next()
		return &Literal{Value: types.NewString(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: types.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: types.NewBool(false)}, nil
		case "INTERVAL":
			p.next()
			s := p.peek()
			if s.Kind != TokString {
				return nil, p.errorf("INTERVAL requires a string literal")
			}
			p.next()
			ns, err := ParseInterval(s.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &IntervalLit{Nanos: ns, Text: s.Text}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case TokOp:
		if t.Text == "(" {
			p.next()
			// Scalar subquery?
			if k := p.peek(); k.Kind == TokKeyword && (k.Text == "SELECT" || k.Text == "WITH") {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Query: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			// count(*) handled in func call path; bare * invalid here.
			return nil, p.errorf("unexpected * in expression")
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case TokIdent:
		// Function call?
		if p.peek2().Kind == TokOp && p.peek2().Text == "(" {
			name := p.next().Text
			p.next() // (
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.peek().Kind == TokOp && p.peek().Text == "*" {
				p.next()
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.eatOp(")") {
				return fc, nil
			}
			fc.Distinct = p.eatKeyword("DISTINCT")
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.eatOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Column ref, possibly qualified: col, tbl.col, or schema.tbl.col.
		name := p.next().Text
		if p.eatOp(".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if p.eatOp(".") {
				col2, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				return &ColumnRef{Table: name + "." + col, Column: col2}, nil
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	if t := p.peek(); !(t.Kind == TokKeyword && t.Text == "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.eatKeyword("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, w)
		c.Thens = append(c.Thens, th)
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.eatKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
