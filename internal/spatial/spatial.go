// Package spatial implements the multi-model database's spatial engine
// (paper §II-B): a planar point index with a uniform grid, supporting
// bounding-box queries, k-nearest-neighbour search and radius queries —
// the spatial-temporal primitives the paper's autonomous-vehicle scenario
// needs (GPS positions of cars, junction locations).
package spatial

import (
	"container/heap"
	"math"
	"sort"
	"sync"
)

// Item is one indexed point.
type Item struct {
	ID   int64
	X, Y float64
}

type cellKey struct{ cx, cy int32 }

// Index is a uniform-grid spatial index. Safe for concurrent use.
type Index struct {
	cell float64

	mu    sync.RWMutex
	cells map[cellKey][]Item
	items map[int64]Item
}

// NewIndex creates a grid index with the given cell size; the cell size
// should be on the order of typical query radii.
func NewIndex(cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Index{
		cell:  cellSize,
		cells: make(map[cellKey][]Item),
		items: make(map[int64]Item),
	}
}

func (ix *Index) keyFor(x, y float64) cellKey {
	return cellKey{cx: int32(math.Floor(x / ix.cell)), cy: int32(math.Floor(y / ix.cell))}
}

// Insert adds or moves a point.
func (ix *Index) Insert(id int64, x, y float64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.items[id]; ok {
		ix.removeFromCellLocked(old)
	}
	it := Item{ID: id, X: x, Y: y}
	ix.items[id] = it
	k := ix.keyFor(x, y)
	ix.cells[k] = append(ix.cells[k], it)
}

// Remove deletes a point; it reports whether the id existed.
func (ix *Index) Remove(id int64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	it, ok := ix.items[id]
	if !ok {
		return false
	}
	delete(ix.items, id)
	ix.removeFromCellLocked(it)
	return true
}

func (ix *Index) removeFromCellLocked(it Item) {
	k := ix.keyFor(it.X, it.Y)
	cell := ix.cells[k]
	for i := range cell {
		if cell[i].ID == it.ID {
			cell[i] = cell[len(cell)-1]
			ix.cells[k] = cell[:len(cell)-1]
			return
		}
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.items)
}

// Get returns a point by id.
func (ix *Index) Get(id int64) (Item, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	it, ok := ix.items[id]
	return it, ok
}

// BBox returns all points with minX <= x <= maxX and minY <= y <= maxY,
// ordered by id for determinism.
func (ix *Index) BBox(minX, minY, maxX, maxY float64) []Item {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	lo := ix.keyFor(minX, minY)
	hi := ix.keyFor(maxX, maxY)
	var out []Item
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, it := range ix.cells[cellKey{cx, cy}] {
				if it.X >= minX && it.X <= maxX && it.Y >= minY && it.Y <= maxY {
					out = append(out, it)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Radius returns all points within distance r of (x, y), nearest first.
func (ix *Index) Radius(x, y, r float64) []Item {
	items := ix.BBox(x-r, y-r, x+r, y+r)
	out := items[:0]
	for _, it := range items {
		if dist2(it.X, it.Y, x, y) <= r*r {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return dist2(out[i].X, out[i].Y, x, y) < dist2(out[j].X, out[j].Y, x, y)
	})
	return out
}

func dist2(ax, ay, bx, by float64) float64 {
	dx, dy := ax-bx, ay-by
	return dx*dx + dy*dy
}

// nnHeap is a max-heap on distance for k-NN pruning.
type nnCand struct {
	it Item
	d2 float64
}

type nnHeap []nnCand

func (h nnHeap) Len() int           { return len(h) }
func (h nnHeap) Less(i, j int) bool { return h[i].d2 > h[j].d2 }
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)        { *h = append(*h, x.(nnCand)) }
func (h *nnHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Nearest returns the k nearest points to (x, y), nearest first. It
// expands the grid search ring by ring and stops when the ring cannot
// contain anything closer than the current k-th candidate.
func (ix *Index) Nearest(x, y float64, k int) []Item {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 || len(ix.items) == 0 {
		return nil
	}
	center := ix.keyFor(x, y)
	h := &nnHeap{}
	maxRing := int32(2048) // hard stop for pathological sparse data

	consider := func(ck cellKey) {
		for _, it := range ix.cells[ck] {
			d2 := dist2(it.X, it.Y, x, y)
			if h.Len() < k {
				heap.Push(h, nnCand{it, d2})
			} else if d2 < (*h)[0].d2 {
				heap.Pop(h)
				heap.Push(h, nnCand{it, d2})
			}
		}
	}

	for ring := int32(0); ring <= maxRing; ring++ {
		if ring == 0 {
			consider(center)
		} else {
			for cx := center.cx - ring; cx <= center.cx+ring; cx++ {
				consider(cellKey{cx, center.cy - ring})
				consider(cellKey{cx, center.cy + ring})
			}
			for cy := center.cy - ring + 1; cy <= center.cy+ring-1; cy++ {
				consider(cellKey{center.cx - ring, cy})
				consider(cellKey{center.cx + ring, cy})
			}
		}
		// The next ring is at least (ring * cell) away; if we already have
		// k candidates all closer than that, stop.
		if h.Len() == k {
			ringDist := float64(ring) * ix.cell
			if (*h)[0].d2 <= ringDist*ringDist {
				break
			}
		}
	}
	out := make([]Item, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(nnCand).it
	}
	return out
}
