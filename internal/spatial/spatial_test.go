package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func gridOf(n int) *Index {
	ix := NewIndex(10)
	id := int64(0)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			ix.Insert(id, float64(x), float64(y))
			id++
		}
	}
	return ix
}

func TestInsertGetRemove(t *testing.T) {
	ix := NewIndex(5)
	ix.Insert(1, 2, 3)
	if it, ok := ix.Get(1); !ok || it.X != 2 || it.Y != 3 {
		t.Fatalf("get = %v, %v", it, ok)
	}
	// Move.
	ix.Insert(1, 100, 100)
	if ix.Len() != 1 {
		t.Fatalf("len after move = %d", ix.Len())
	}
	if got := ix.BBox(0, 0, 10, 10); len(got) != 0 {
		t.Errorf("old position still indexed: %v", got)
	}
	if !ix.Remove(1) || ix.Remove(1) {
		t.Error("remove semantics broken")
	}
	if ix.Len() != 0 {
		t.Error("len after remove")
	}
}

func TestBBox(t *testing.T) {
	ix := gridOf(20) // points (0..19, 0..19)
	got := ix.BBox(5, 5, 7, 7)
	if len(got) != 9 {
		t.Fatalf("bbox = %d points", len(got))
	}
	for _, it := range got {
		if it.X < 5 || it.X > 7 || it.Y < 5 || it.Y > 7 {
			t.Errorf("point outside box: %v", it)
		}
	}
	// Box spanning negative space.
	ix.Insert(9999, -3, -3)
	if got := ix.BBox(-5, -5, -1, -1); len(got) != 1 || got[0].ID != 9999 {
		t.Errorf("negative bbox = %v", got)
	}
}

func TestRadius(t *testing.T) {
	ix := gridOf(10)
	got := ix.Radius(5, 5, 1.5)
	// (5,5), 4 at distance 1, 4 at distance sqrt(2).
	if len(got) != 9 {
		t.Fatalf("radius = %d points", len(got))
	}
	if got[0].X != 5 || got[0].Y != 5 {
		t.Errorf("nearest-first order broken: %v", got[0])
	}
}

func TestNearestExactness(t *testing.T) {
	// Compare grid k-NN against brute force on random data.
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex(10)
	type pt struct{ x, y float64 }
	pts := make([]pt, 500)
	for i := range pts {
		pts[i] = pt{rng.Float64() * 1000, rng.Float64() * 1000}
		ix.Insert(int64(i), pts[i].x, pts[i].y)
	}
	for trial := 0; trial < 20; trial++ {
		qx, qy := rng.Float64()*1000, rng.Float64()*1000
		k := 1 + rng.Intn(10)
		got := ix.Nearest(qx, qy, k)
		if len(got) != k {
			t.Fatalf("k-NN returned %d, want %d", len(got), k)
		}
		// Brute force.
		type cand struct {
			id int64
			d  float64
		}
		var all []cand
		for i, p := range pts {
			all = append(all, cand{int64(i), math.Hypot(p.x-qx, p.y-qy)})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < k; i++ {
			gd := math.Hypot(got[i].X-qx, got[i].Y-qy)
			if math.Abs(gd-all[i].d) > 1e-9 {
				t.Fatalf("trial %d: k-NN[%d] distance %f, brute force %f", trial, i, gd, all[i].d)
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	ix := NewIndex(10)
	if got := ix.Nearest(0, 0, 3); got != nil {
		t.Error("empty index should return nil")
	}
	ix.Insert(1, 5, 5)
	if got := ix.Nearest(0, 0, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	got := ix.Nearest(0, 0, 5)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("k > n should return all: %v", got)
	}
	// Query far away from all data (ring expansion must still find it).
	ix.Insert(2, 10000, 10000)
	got = ix.Nearest(-5000, -5000, 1)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("far query = %v", got)
	}
}

func TestBBoxRadiusConsistencyProperty(t *testing.T) {
	// Property: Radius(r) ⊆ BBox(r) and every radius result is within r.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndex(7)
		for i := 0; i < 200; i++ {
			ix.Insert(int64(i), rng.Float64()*200-100, rng.Float64()*200-100)
		}
		qx, qy, r := rng.Float64()*100, rng.Float64()*100, 5+rng.Float64()*30
		rad := ix.Radius(qx, qy, r)
		boxIDs := map[int64]bool{}
		for _, it := range ix.BBox(qx-r, qy-r, qx+r, qy+r) {
			boxIDs[it.ID] = true
		}
		for _, it := range rad {
			if !boxIDs[it.ID] {
				return false
			}
			if math.Hypot(it.X-qx, it.Y-qy) > r+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	ix := NewIndex(10)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ix.Insert(int64(w*200+i), float64(i), float64(w))
				ix.BBox(0, 0, 50, 50)
				ix.Nearest(float64(i), float64(w), 3)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if ix.Len() != 800 {
		t.Errorf("len = %d", ix.Len())
	}
}
