// Package htap implements HTAP analytical replicas (paper §II-III,
// GaussDB/Taurus; Polynesia in PAPERS.md): per-shard columnar replicas fed
// by the cluster's commit-log tap, kept consistent with the row primaries
// by replaying committed write records in per-DN commit order.
//
// Each primary data node gets one replica: a set of colstore tables in
// delta-merge mode (insert append + xmax tombstones for update/delete)
// under a replica-local transaction manager, so analytical scans read a
// transactionally consistent per-DN prefix of the commit stream. A
// configurable freshness bound (maximum apply lag, in records) governs
// routing: a statement whose replicas lag beyond the bound either blocks
// until they catch up (PolicyBlock) or degrades to the primary row path
// (PolicyDegrade). Consistency is enforced by that bound, not by shared
// locks — analytical scans never contend with OLTP commits.
package htap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/plan"
	"repro/internal/txnkit"
	"repro/internal/types"
)

// Policy selects what a statement does when its replicas exceed the
// freshness bound.
type Policy uint8

const (
	// PolicyBlock waits (up to BlockTimeout) for the apply watermark to
	// catch up, then degrades.
	PolicyBlock Policy = iota
	// PolicyDegrade sends the statement to the primary row path
	// immediately.
	PolicyDegrade
)

func (p Policy) String() string {
	if p == PolicyDegrade {
		return "degrade"
	}
	return "block"
}

// Config tunes the HTAP manager. The zero value is a strict configuration:
// replicas must be fully applied (lag 0) before serving, blocking up to
// the default timeout.
type Config struct {
	// MaxLagRecords is the freshness bound: the largest apply lag (records
	// enqueued minus applied, per replica) at which a replica may still
	// serve analytical reads. 0 requires fully-applied replicas.
	MaxLagRecords int64
	// Policy picks blocking vs degrading when the bound is exceeded.
	Policy Policy
	// BlockTimeout caps how long PolicyBlock waits before degrading
	// (default 2s).
	BlockTimeout time.Duration
	// MergeBatch is the maximum number of commit legs merged per apply
	// round (default 32).
	MergeBatch int
	// SealRows seals a replica table's delta buffer into a compressed
	// segment once it holds at least this many rows (default 512; the
	// colstore also self-seals at colstore.SegmentRows regardless).
	SealRows int
}

func (c Config) withDefaults() Config {
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 2 * time.Second
	}
	if c.MergeBatch <= 0 {
		c.MergeBatch = 32
	}
	if c.SealRows <= 0 {
		c.SealRows = 512
	}
	return c
}

// replTable is one replicated table on one replica.
type replTable struct {
	tbl  *colstore.Table
	meta *plan.TableMeta
}

// leg is one committed transaction leg's records, queued for apply.
type leg struct {
	recs []cluster.WriteRec
}

// replica is the columnar mirror of one primary data node.
type replica struct {
	dn int
	// txm is the replica-local transaction manager; one per replica, so
	// snapshots are consistent across all of its tables.
	txm *txnkit.TxnManager

	tmu    sync.RWMutex
	tables map[string]*replTable

	qmu   sync.Mutex
	queue []leg
	wake  chan struct{}

	// Watermarks, all monotonic: enq* advance under the primary's commit
	// lock, app* advance as the apply loop commits replica transactions.
	enqLegs atomic.Int64
	enqRecs atomic.Int64
	appLegs atomic.Int64
	appRecs atomic.Int64
}

// lag returns the replica's current apply lag in records.
func (r *replica) lag() int64 { return r.enqRecs.Load() - r.appRecs.Load() }

func (r *replica) table(name string) *replTable {
	r.tmu.RLock()
	defer r.tmu.RUnlock()
	return r.tables[name]
}

// Manager owns the analytical replicas: it subscribes to the cluster
// commit tap, runs one apply goroutine per replica, and implements
// cluster.AnalyticalProvider for statement routing.
type Manager struct {
	c        *cluster.Cluster
	cfg      Config
	replicas map[int]*replica // keyed by primary dn; immutable after Enable

	// Runtime-adjustable freshness knobs (E19 sweeps them on a live
	// manager).
	maxLag       atomic.Int64
	policy       atomic.Int32
	blockTimeout atomic.Int64 // nanoseconds

	detach func() // commit-tap unsubscribe
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// paused freezes the apply loops mid-stream (freshness-bound tests).
	paused atomic.Bool

	// failure poisons the manager: apply hit a divergence it cannot
	// repair, so the gate refuses every statement from then on.
	failure atomic.Pointer[applyFailure]

	// Routing counters.
	offloaded    atomic.Int64
	degraded     atomic.Int64
	gateBlocks   atomic.Int64
	gateTimeouts atomic.Int64
}

type applyFailure struct{ err error }

// Enable builds columnar replicas of every distributed table under a
// cluster-wide barrier, subscribes to the commit tap before the barrier
// lifts (so the replicas see exactly the seed plus every later committed
// record), installs analytical-read routing, and starts the apply loops.
func Enable(c *cluster.Cluster, cfg Config) (*Manager, error) {
	m := &Manager{
		c:        c,
		cfg:      cfg.withDefaults(),
		replicas: make(map[int]*replica),
		stop:     make(chan struct{}),
	}
	m.maxLag.Store(m.cfg.MaxLagRecords)
	m.policy.Store(int32(m.cfg.Policy))
	m.blockTimeout.Store(int64(m.cfg.BlockTimeout))

	err := c.SeedAnalyticalReplicas(func(primaries []int, seeds []cluster.AnalyticalSeed) error {
		for _, dn := range primaries {
			m.replicas[dn] = &replica{
				dn:     dn,
				txm:    txnkit.NewTxnManager(),
				tables: make(map[string]*replTable),
				wake:   make(chan struct{}, 1),
			}
		}
		for _, seed := range seeds {
			for dn, rows := range seed.Rows {
				r := m.replicas[dn]
				rt := r.createTable(seed.Meta)
				xid := r.txm.Begin()
				for _, row := range rows {
					if err := rt.tbl.Insert(xid, row); err != nil {
						_ = r.txm.Abort(xid)
						return fmt.Errorf("htap: seeding %q on dn%d: %w", seed.Meta.Name, dn, err)
					}
				}
				if err := r.txm.Commit(xid); err != nil {
					return err
				}
				rt.tbl.Flush()
			}
		}
		// Subscribe while the barrier is still held: every commit after
		// this point reaches the queues, and none before it can.
		m.detach = c.AddCommitTap(m)
		return nil
	})
	if err != nil {
		if m.detach != nil {
			m.detach()
		}
		return nil, err
	}
	for _, r := range m.replicas {
		m.wg.Add(1)
		go m.applyReplica(r)
	}
	c.SetAnalyticalReads(m)
	return m, nil
}

// Close detaches routing and the commit tap, then stops the apply loops.
// Queued-but-unapplied records are dropped — the replicas are disposable
// derived state.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.c.SetAnalyticalReads(nil)
	if m.detach != nil {
		m.detach()
	}
	close(m.stop)
	m.wg.Wait()
}

// createTable registers an empty delta-merge table on the replica.
func (r *replica) createTable(meta *plan.TableMeta) *replTable {
	tbl := colstore.NewTable(meta.Name, meta.Schema, r.txm)
	tbl.EnableTombstones()
	rt := &replTable{tbl: tbl, meta: meta}
	r.tmu.Lock()
	r.tables[meta.Name] = rt
	r.tmu.Unlock()
	return rt
}

// ---------------------------------------------------------------------------
// Commit-tap ingest
// ---------------------------------------------------------------------------

// Committed implements cluster.CommitTap. It runs under the data node's
// commit lock, so it only enqueues: the records land in the replica's
// queue in commit order and the watermarks advance. Legs from nodes
// without a replica (standbys, post-enable primaries) are ignored — their
// fragments read the primary.
func (m *Manager) Committed(dnID int, recs []cluster.WriteRec) func() {
	r := m.replicas[dnID]
	if r == nil {
		return nil
	}
	r.qmu.Lock()
	r.queue = append(r.queue, leg{recs: recs})
	r.qmu.Unlock()
	r.enqLegs.Add(1)
	r.enqRecs.Add(int64(len(recs)))
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return nil
}

// take dequeues up to max legs.
func (r *replica) take(max int) []leg {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	n := len(r.queue)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := append([]leg(nil), r.queue[:n]...)
	rest := r.queue[n:]
	if len(rest) == 0 {
		r.queue = nil // release the backing array
	} else {
		r.queue = append(r.queue[:0], rest...)
	}
	return out
}

// applyReplica is one replica's apply loop: drain queued legs in batches,
// replay each leg as one replica-local transaction, seal delta buffers on
// batch boundaries.
func (m *Manager) applyReplica(r *replica) {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-r.wake:
		}
		for !m.paused.Load() {
			legs := r.take(m.cfg.MergeBatch)
			if len(legs) == 0 {
				break
			}
			for _, l := range legs {
				if err := m.applyLeg(r, l.recs); err != nil {
					m.failure.Store(&applyFailure{err: err})
					return
				}
				r.appLegs.Add(1)
				r.appRecs.Add(int64(len(l.recs)))
			}
			// Batch boundary: seal delta buffers that crossed the merge
			// threshold so scans run on compressed, zone-mapped segments.
			r.tmu.RLock()
			for _, rt := range r.tables {
				if rt.tbl.DeltaLen() >= m.cfg.SealRows {
					rt.tbl.Flush()
				}
			}
			r.tmu.RUnlock()
		}
	}
}

// applyLeg replays one committed leg as a single replica transaction, so
// the leg's writes become visible atomically, exactly as they did on the
// primary.
func (m *Manager) applyLeg(r *replica, recs []cluster.WriteRec) error {
	xid := r.txm.Begin()
	snap := r.txm.LocalSnapshot()
	for _, rec := range recs {
		rt := r.table(rec.Table)
		if rt == nil {
			// Table created after Enable: the tap has carried every write
			// since its creation, so an empty replica table is exact.
			meta, err := m.c.Resolve(rec.Table)
			if err != nil {
				_ = r.txm.Abort(xid)
				return fmt.Errorf("htap: dn%d: unknown table %q in commit stream: %w", r.dn, rec.Table, err)
			}
			rt = r.createTable(meta)
		}
		var err error
		switch rec.Op {
		case cluster.OpInsert:
			err = rt.tbl.Insert(xid, rec.Row)
		case cluster.OpUpdate:
			if err = rt.tbl.DeleteMatching(xid, &snap, rec.Old); err == nil {
				err = rt.tbl.Insert(xid, rec.Row)
			}
		case cluster.OpDelete:
			err = rt.tbl.DeleteMatching(xid, &snap, rec.Old)
		case cluster.OpReap:
			// The primary physically drops the bucket's rows after a
			// migration; the replica expresses the same removal as an MVCC
			// delete, which future snapshots see identically.
			if dk := rt.meta.DistKey; dk >= 0 {
				rt.tbl.DeleteWhere(xid, &snap, func(row types.Row) bool {
					return cluster.BucketOf(row[dk]) == rec.Bucket
				})
			}
		}
		if err != nil {
			_ = r.txm.Abort(xid)
			return fmt.Errorf("htap: dn%d: replica diverged applying %s on %q: %w", r.dn, rec.Op, rec.Table, err)
		}
	}
	return r.txm.Commit(xid)
}

// ---------------------------------------------------------------------------
// Routing: cluster.AnalyticalProvider
// ---------------------------------------------------------------------------

// Gate implements the freshness bound. Called once per analytical
// statement with the primaries it would scan; true admits the statement to
// the replicas. Under PolicyBlock a stale replica is waited on — the
// target watermark is captured at gate time, so the wait terminates as
// long as the apply loop is running (and times out into degradation when
// it is paused or wedged).
func (m *Manager) Gate(dnIDs []int) bool {
	if m.failure.Load() != nil || m.closed.Load() {
		m.degraded.Add(1)
		return false
	}
	maxLag := m.maxLag.Load()
	var stale []*replica
	var targets []int64
	for _, dn := range dnIDs {
		r := m.replicas[dn]
		if r == nil {
			continue // no replica: that fragment reads the primary anyway
		}
		if enq := r.enqRecs.Load(); enq-r.appRecs.Load() > maxLag {
			stale = append(stale, r)
			targets = append(targets, enq-maxLag)
		}
	}
	if len(stale) == 0 {
		m.offloaded.Add(1)
		return true
	}
	if Policy(m.policy.Load()) == PolicyDegrade {
		m.degraded.Add(1)
		return false
	}
	m.gateBlocks.Add(1)
	deadline := time.Now().Add(time.Duration(m.blockTimeout.Load()))
	for i, r := range stale {
		for r.appRecs.Load() < targets[i] {
			if time.Now().After(deadline) {
				m.gateTimeouts.Add(1)
				m.degraded.Add(1)
				return false
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	m.offloaded.Add(1)
	return true
}

// Replica implements cluster.AnalyticalProvider table lookup.
func (m *Manager) Replica(name string, dn int) (*colstore.Table, *txnkit.TxnManager, bool) {
	r := m.replicas[dn]
	if r == nil {
		return nil, nil, false
	}
	rt := r.table(name)
	if rt == nil {
		return nil, nil, false
	}
	return rt.tbl, r.txm, true
}

// ---------------------------------------------------------------------------
// Freshness knobs, test hooks, verification
// ---------------------------------------------------------------------------

// SetFreshnessBound adjusts the maximum apply lag (records) at runtime.
func (m *Manager) SetFreshnessBound(records int64) { m.maxLag.Store(records) }

// SetPolicy adjusts the staleness policy at runtime.
func (m *Manager) SetPolicy(p Policy) { m.policy.Store(int32(p)) }

// SetBlockTimeout adjusts how long PolicyBlock waits before degrading.
func (m *Manager) SetBlockTimeout(d time.Duration) { m.blockTimeout.Store(int64(d)) }

// SetApplyPaused freezes (true) or resumes (false) every apply loop —
// enqueued records accumulate as lag while paused. Test hook for the
// freshness bound.
func (m *Manager) SetApplyPaused(paused bool) {
	m.paused.Store(paused)
	if !paused {
		for _, r := range m.replicas {
			select {
			case r.wake <- struct{}{}:
			default:
			}
		}
	}
}

// Err returns the apply failure that poisoned the manager, if any.
func (m *Manager) Err() error {
	if f := m.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// WaitCaughtUp blocks until every replica's applied watermark reaches the
// enqueue watermark observed at call time, or the timeout expires.
func (m *Manager) WaitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, r := range m.replicas {
		target := r.enqRecs.Load()
		for r.appRecs.Load() < target {
			if err := m.Err(); err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("htap: dn%d apply lag %d records after %v", r.dn, r.lag(), timeout)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	return nil
}

// ReplicaDigest digests the replica rows of table name on dn that the
// routing map currently assigns to dn, under a fresh replica snapshot —
// directly comparable to cluster.PartitionDigest(name, dn, dn).
func (m *Manager) ReplicaDigest(name string, dn int) (cluster.TableDigest, error) {
	r := m.replicas[dn]
	if r == nil {
		return cluster.TableDigest{}, fmt.Errorf("htap: no replica for dn%d", dn)
	}
	rt := r.table(name)
	if rt == nil {
		return cluster.TableDigest{}, fmt.Errorf("htap: no replica table %q on dn%d", name, dn)
	}
	owns := m.c.OwnsRow(rt.meta, dn)
	snap := r.txm.LocalSnapshot()
	var rows []types.Row
	rt.tbl.ScanRows(0, &snap, func(row types.Row) bool {
		if owns == nil || owns(row) {
			rows = append(rows, row)
		}
		return true
	})
	return cluster.DigestRows(rows), nil
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

// ReplicaStatus reports one replica's watermarks.
type ReplicaStatus struct {
	DN              int
	Tables          int
	EnqueuedRecords int64
	AppliedRecords  int64
	AppliedLegs     int64
	LagRecords      int64
}

// Status is a point-in-time snapshot of the manager.
type Status struct {
	Replicas []ReplicaStatus
	// Aggregates across replicas.
	RecordsApplied int64
	LegsApplied    int64
	MaxLagRecords  int64 // largest current per-replica lag
	// Routing counters.
	QueriesOffloaded int64
	QueriesDegraded  int64
	GateBlocks       int64
	GateTimeouts     int64
	// Colstore aggregates across every replica table (segment shape,
	// tombstones, compression).
	Colstore colstore.TableStats
	Scans    colstore.ScanStats
}

// Status collects the manager's current watermarks and replica storage
// statistics.
func (m *Manager) Status() Status {
	st := Status{
		QueriesOffloaded: m.offloaded.Load(),
		QueriesDegraded:  m.degraded.Load(),
		GateBlocks:       m.gateBlocks.Load(),
		GateTimeouts:     m.gateTimeouts.Load(),
	}
	for _, r := range m.replicas {
		rs := ReplicaStatus{
			DN:              r.dn,
			EnqueuedRecords: r.enqRecs.Load(),
			AppliedRecords:  r.appRecs.Load(),
			AppliedLegs:     r.appLegs.Load(),
		}
		rs.LagRecords = rs.EnqueuedRecords - rs.AppliedRecords
		r.tmu.RLock()
		rs.Tables = len(r.tables)
		for _, rt := range r.tables {
			st.Colstore.Add(rt.tbl.Stats())
			st.Scans.Add(rt.tbl.ScanStats())
		}
		r.tmu.RUnlock()
		st.RecordsApplied += rs.AppliedRecords
		st.LegsApplied += rs.AppliedLegs
		if rs.LagRecords > st.MaxLagRecords {
			st.MaxLagRecords = rs.LagRecords
		}
		st.Replicas = append(st.Replicas, rs)
	}
	return st
}
