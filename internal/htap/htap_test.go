package htap

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

func newCluster(t *testing.T, dns int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{DataNodes: dns})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustExec(t *testing.T, s *cluster.Session, sql string) *cluster.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func setup(t *testing.T, c *cluster.Cluster, rows int) *cluster.Session {
	t.Helper()
	s := c.NewSession()
	mustExec(t, s, "CREATE TABLE accounts (id BIGINT, branch BIGINT, balance BIGINT, PRIMARY KEY(id)) DISTRIBUTE BY HASH(id)")
	for i := 0; i < rows; i += 20 {
		sql := "INSERT INTO accounts VALUES "
		for j := i; j < i+20 && j < rows; j++ {
			if j > i {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d, %d, 100)", j, j%10)
		}
		mustExec(t, s, sql)
	}
	return s
}

func enable(t *testing.T, c *cluster.Cluster, cfg Config) *Manager {
	t.Helper()
	m, err := Enable(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// checkConverged waits for the apply loops and compares every replica
// partition digest against the primary's.
func checkConverged(t *testing.T, c *cluster.Cluster, m *Manager, table string) {
	t.Helper()
	if err := m.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Status().Replicas {
		want, err := c.PartitionDigest(table, st.DN, st.DN)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ReplicaDigest(table, st.DN)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("dn%d: replica digest %+v != primary %+v", st.DN, got, want)
		}
	}
}

func TestSeedAndConverge(t *testing.T) {
	c := newCluster(t, 3)
	s := setup(t, c, 200)
	m := enable(t, c, Config{})

	// Seeded state matches the primaries immediately.
	checkConverged(t, c, m, "accounts")

	// Mixed DML after enable converges too: inserts, updates, deletes.
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, 5)", 1000+i, i%10))
	}
	mustExec(t, s, "UPDATE accounts SET balance = balance + 7 WHERE branch = 3")
	mustExec(t, s, "DELETE FROM accounts WHERE branch = 8")
	checkConverged(t, c, m, "accounts")
	if err := m.Err(); err != nil {
		t.Fatalf("apply failure: %v", err)
	}
}

func TestAnalyticalOffloadAndIdentity(t *testing.T) {
	c := newCluster(t, 3)
	s := setup(t, c, 300)
	m := enable(t, c, Config{})
	if err := m.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT count(*), sum(balance) FROM accounts",
		"SELECT branch, count(*), sum(balance) FROM accounts GROUP BY branch ORDER BY branch",
		"SELECT id, balance FROM accounts WHERE balance > 50 ORDER BY id LIMIT 10",
		"SELECT avg(balance) FROM accounts WHERE branch < 5",
	}
	for _, q := range queries {
		c.DisableHTAPReads = true
		want := mustExec(t, s, q)
		c.DisableHTAPReads = false
		got := mustExec(t, s, q)
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Errorf("%s:\n  primary %v\n  replica %v", q, want.Rows, got.Rows)
		}
	}
	if off := m.Status().QueriesOffloaded; off < int64(len(queries)) {
		t.Errorf("offloaded = %d, want >= %d", off, len(queries))
	}

	// Point reads and DML must not offload.
	before := m.Status().QueriesOffloaded
	mustExec(t, s, "SELECT balance FROM accounts WHERE id = 17")
	mustExec(t, s, "UPDATE accounts SET balance = 1 WHERE id = 17")
	if off := m.Status().QueriesOffloaded; off != before {
		t.Errorf("point read/DML offloaded (%d -> %d)", before, off)
	}
}

// TestReadOwnWritesInTxn asserts a transaction that has written reads its
// own writes — the statement must stay on the primary even though its
// shape is analytical, because the replica only learns about the write at
// commit.
func TestReadOwnWritesInTxn(t *testing.T) {
	c := newCluster(t, 3)
	s := setup(t, c, 100)
	m := enable(t, c, Config{})
	if err := m.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO accounts VALUES (5000, 1, 999)")
	res := mustExec(t, s, "SELECT count(*) FROM accounts WHERE balance = 999")
	if got := res.Rows[0][0].Int(); got != 1 {
		t.Errorf("txn does not see its own write through analytical shape: count=%d", got)
	}
	mustExec(t, s, "COMMIT")
	checkConverged(t, c, m, "accounts")
}

// TestFreshnessBound is the satellite-3 matrix: pause the apply loops
// mid-stream, assert PolicyDegrade sends statements to the primary
// immediately while PolicyBlock waits (and times out into degradation),
// that watermarks stay monotonic throughout, and that resuming converges
// to digest-identical replicas.
func TestFreshnessBound(t *testing.T) {
	c := newCluster(t, 3)
	s := setup(t, c, 100)
	m := enable(t, c, Config{MaxLagRecords: 0, Policy: PolicyDegrade, BlockTimeout: 50 * time.Millisecond})
	if err := m.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Freeze apply and stack up lag.
	m.SetApplyPaused(true)
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, 1, 3)", 2000+i))
	}
	st := m.Status()
	if st.MaxLagRecords == 0 {
		t.Fatal("no lag accumulated while paused")
	}

	// PolicyDegrade: statement answers from the primary (correct, fresh)
	// and the degraded counter moves.
	degBefore := m.Status().QueriesDegraded
	res := mustExec(t, s, "SELECT count(*) FROM accounts")
	if got := res.Rows[0][0].Int(); got != 130 {
		t.Errorf("degraded statement returned stale count %d, want 130", got)
	}
	if d := m.Status().QueriesDegraded; d != degBefore+1 {
		t.Errorf("degraded counter %d -> %d, want +1", degBefore, d)
	}

	// PolicyBlock with a paused apply loop: the gate must time out and
	// degrade rather than hang.
	m.SetPolicy(PolicyBlock)
	start := time.Now()
	res = mustExec(t, s, "SELECT count(*) FROM accounts")
	if got := res.Rows[0][0].Int(); got != 130 {
		t.Errorf("blocked statement returned %d, want 130", got)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Errorf("gate returned after %v, want >= ~50ms block", waited)
	}
	st = m.Status()
	if st.GateBlocks == 0 || st.GateTimeouts == 0 {
		t.Errorf("gate counters: blocks=%d timeouts=%d, want both > 0", st.GateBlocks, st.GateTimeouts)
	}

	// A loose freshness bound admits the stale replicas as-is.
	m.SetFreshnessBound(1000)
	offBefore := m.Status().QueriesOffloaded
	mustExec(t, s, "SELECT sum(balance) FROM accounts")
	if off := m.Status().QueriesOffloaded; off != offBefore+1 {
		t.Errorf("loose bound did not offload (%d -> %d)", offBefore, off)
	}
	m.SetFreshnessBound(0)

	// Watermarks are monotonic while paused and across resume.
	applied := map[int]int64{}
	for _, rs := range m.Status().Replicas {
		applied[rs.DN] = rs.AppliedRecords
	}
	m.SetApplyPaused(false)

	// PolicyBlock with a live apply loop: the statement waits for catch-up
	// and then offloads with a fresh answer.
	res = mustExec(t, s, "SELECT count(*) FROM accounts")
	if got := res.Rows[0][0].Int(); got != 130 {
		t.Errorf("post-resume count = %d, want 130", got)
	}
	for _, rs := range m.Status().Replicas {
		if rs.AppliedRecords < applied[rs.DN] {
			t.Errorf("dn%d applied watermark went backwards: %d -> %d",
				rs.DN, applied[rs.DN], rs.AppliedRecords)
		}
		if rs.EnqueuedRecords < rs.AppliedRecords {
			t.Errorf("dn%d applied %d beyond enqueued %d", rs.DN, rs.AppliedRecords, rs.EnqueuedRecords)
		}
	}
	checkConverged(t, c, m, "accounts")
}

// TestConcurrentWritesAndScans hammers inserts/updates while analytical
// scans run, then checks convergence — the race detector guards the
// tombstone stamping and snapshot paths.
func TestConcurrentWritesAndScans(t *testing.T) {
	c := newCluster(t, 3)
	setup(t, c, 100)
	m := enable(t, c, Config{MaxLagRecords: 1 << 30}) // always offload

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			for i := 0; i < 40; i++ {
				id := 3000 + w*100 + i
				mustExec(t, sess, fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d, 1)", id, id%10))
				mustExec(t, sess, fmt.Sprintf("UPDATE accounts SET balance = balance + 1 WHERE id = %d", id))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := c.NewSession()
		for i := 0; i < 30; i++ {
			mustExec(t, sess, "SELECT branch, count(*), sum(balance) FROM accounts GROUP BY branch")
		}
	}()
	wg.Wait()
	checkConverged(t, c, m, "accounts")
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTableCreatedAfterEnable verifies lazy replica-table creation: a
// table created after HTAP is enabled gets replicated from its first
// committed write.
func TestTableCreatedAfterEnable(t *testing.T) {
	c := newCluster(t, 3)
	s := setup(t, c, 10)
	m := enable(t, c, Config{})

	mustExec(t, s, "CREATE TABLE late (k BIGINT, v BIGINT) DISTRIBUTE BY HASH(k)")
	for i := 0; i < 60; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO late VALUES (%d, %d)", i, i*2))
	}
	mustExec(t, s, "DELETE FROM late WHERE k < 10")
	checkConverged(t, c, m, "late")

	c.DisableHTAPReads = true
	want := mustExec(t, s, "SELECT count(*), sum(v) FROM late")
	c.DisableHTAPReads = false
	got := mustExec(t, s, "SELECT count(*), sum(v) FROM late")
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Errorf("late table: primary %v replica %v", want.Rows, got.Rows)
	}
}

// TestBucketMoveReap moves a bucket between nodes and checks the replicas
// track it: the source replica reaps the bucket's rows, the target replica
// gains them, and analytical answers stay identical.
func TestBucketMoveReap(t *testing.T) {
	c := newCluster(t, 3)
	s := setup(t, c, 200)
	m := enable(t, c, Config{})
	if err := m.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	owners := c.BucketOwners()
	src := owners[0]
	dst := (src + 1) % 3
	if _, err := c.MoveBucket(0, dst); err != nil {
		t.Fatalf("MoveBucket: %v", err)
	}
	checkConverged(t, c, m, "accounts")

	c.DisableHTAPReads = true
	want := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts")
	c.DisableHTAPReads = false
	got := mustExec(t, s, "SELECT count(*), sum(balance) FROM accounts")
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Errorf("after bucket move: primary %v replica %v", want.Rows, got.Rows)
	}
}

func TestStatusAndSegmentStats(t *testing.T) {
	c := newCluster(t, 2)
	s := setup(t, c, 50)
	m := enable(t, c, Config{SealRows: 16})
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO accounts VALUES (%d, 1, 2)", 7000+i))
	}
	if err := m.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "SELECT sum(balance) FROM accounts") // drive replica scan counters

	st := m.Status()
	if len(st.Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(st.Replicas))
	}
	if st.RecordsApplied < 200 {
		t.Errorf("records applied = %d, want >= 200", st.RecordsApplied)
	}
	// SealRows=16 with 200 streamed rows must have produced segments.
	if st.Colstore.Segments == 0 {
		t.Errorf("no sealed segments despite SealRows=16: %+v", st.Colstore)
	}
	if st.Scans.RowsScanned == 0 {
		t.Error("replica scan counters did not move")
	}
}
