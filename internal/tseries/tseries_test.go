package tseries

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Unix(1_600_000_000, 0).UTC()

func fill(s *Store, name string, n int, step time.Duration) {
	for i := 0; i < n; i++ {
		s.Append(name, t0.Add(time.Duration(i)*step), float64(i), nil)
	}
}

func TestAppendRange(t *testing.T) {
	s := NewStore()
	fill(s, "temp", 100, time.Second)
	if s.Len("temp") != 100 {
		t.Fatalf("len = %d", s.Len("temp"))
	}
	pts := s.Range("temp", t0.Add(10*time.Second), t0.Add(20*time.Second), nil)
	if len(pts) != 10 {
		t.Fatalf("range = %d points", len(pts))
	}
	if pts[0].Value != 10 || pts[9].Value != 19 {
		t.Errorf("points = %v..%v", pts[0], pts[9])
	}
	if got := s.Range("missing", t0, t0.Add(time.Hour), nil); got != nil {
		t.Errorf("missing series = %v", got)
	}
}

func TestOutOfOrderAppends(t *testing.T) {
	s := NewStore()
	// Insert in reverse order; queries must still be time-ordered.
	for i := 9; i >= 0; i-- {
		s.Append("x", t0.Add(time.Duration(i)*time.Second), float64(i), nil)
	}
	pts := s.Range("x", t0, t0.Add(time.Minute), nil)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i) {
			t.Fatalf("point %d = %v", i, p)
		}
	}
}

func TestChunkSealing(t *testing.T) {
	s := NewStore()
	fill(s, "big", ChunkSize*2+10, time.Millisecond)
	if s.Len("big") != ChunkSize*2+10 {
		t.Fatalf("len = %d", s.Len("big"))
	}
	pts := s.Range("big", t0, t0.Add(time.Hour), nil)
	if len(pts) != ChunkSize*2+10 {
		t.Fatalf("range = %d", len(pts))
	}
}

func TestTagFiltering(t *testing.T) {
	s := NewStore()
	s.Append("speed", t0, 100, map[string]string{"car": "a"})
	s.Append("speed", t0.Add(time.Second), 120, map[string]string{"car": "b"})
	s.Append("speed", t0.Add(2*time.Second), 130, map[string]string{"car": "a"})
	pts := s.Range("speed", t0, t0.Add(time.Minute), map[string]string{"car": "a"})
	if len(pts) != 2 || pts[1].Value != 130 {
		t.Errorf("filtered = %v", pts)
	}
}

func TestWindowAggregation(t *testing.T) {
	s := NewStore()
	fill(s, "w", 60, time.Second) // values 0..59 over one minute
	buckets := s.Window("w", t0, t0.Add(time.Minute), 10*time.Second, nil)
	if len(buckets) != 6 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	b := buckets[0]
	if b.Count != 10 || b.Sum != 45 || b.Min != 0 || b.Max != 9 || b.Value(AggAvg) != 4.5 {
		t.Errorf("bucket 0 = %+v", b)
	}
	if buckets[5].Value(AggMax) != 59 {
		t.Errorf("bucket 5 = %+v", buckets[5])
	}
}

func TestContinuousRollupMatchesOnTheFly(t *testing.T) {
	s := NewStore()
	fill(s, "r", 100, time.Second)
	if err := s.EnableRollup("r", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Back-filled rollup must equal on-the-fly aggregation.
	fromRollup := s.Window("r", t0, t0.Add(100*time.Second), 10*time.Second, nil)
	onTheFly := s.Window("r", t0, t0.Add(100*time.Second), 9*time.Second, nil) // different width: raw path
	_ = onTheFly
	if len(fromRollup) != 10 {
		t.Fatalf("rollup buckets = %d", len(fromRollup))
	}
	// Appends after enabling keep the rollup current.
	s.Append("r", t0.Add(100*time.Second), 1000, nil)
	got := s.Window("r", t0, t0.Add(101*time.Second), 10*time.Second, nil)
	if len(got) != 11 || got[10].Max != 1000 {
		t.Errorf("incremental rollup = %+v", got[len(got)-1])
	}
	// Double-enable is a no-op; non-positive width is an error.
	if err := s.EnableRollup("r", 10*time.Second); err != nil {
		t.Error(err)
	}
	if err := s.EnableRollup("r", 0); err == nil {
		t.Error("zero width must fail")
	}
}

func TestRollupEquivalenceProperty(t *testing.T) {
	// Property: for random data, Window via rollup == Window via raw scan.
	f := func(vals []uint8) bool {
		a, b := NewStore(), NewStore()
		b.EnableRollup("s", 5*time.Second)
		for i, v := range vals {
			ts := t0.Add(time.Duration(i%40) * time.Second)
			a.Append("s", ts, float64(v), nil)
			b.Append("s", ts, float64(v), nil)
		}
		end := t0.Add(time.Minute)
		wa := a.Window("s", t0, end, 5*time.Second, nil)
		wb := b.Window("s", t0, end, 5*time.Second, nil)
		if len(wa) != len(wb) {
			return false
		}
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpire(t *testing.T) {
	s := NewStore()
	fill(s, "e", 100, time.Second)
	s.EnableRollup("e", 10*time.Second)
	removed := s.Expire("e", t0.Add(50*time.Second))
	if removed != 50 {
		t.Fatalf("removed = %d", removed)
	}
	if s.Len("e") != 50 {
		t.Errorf("len = %d", s.Len("e"))
	}
	pts := s.Range("e", t0, t0.Add(time.Hour), nil)
	if len(pts) != 50 || pts[0].Value != 50 {
		t.Errorf("post-expiry = %d pts, first %v", len(pts), pts[0])
	}
	if s.Expire("missing", t0) != 0 {
		t.Error("expiring missing series should be 0")
	}
}

func TestLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest("none"); ok {
		t.Error("latest of missing series")
	}
	s.Append("l", t0.Add(5*time.Second), 5, nil)
	s.Append("l", t0.Add(2*time.Second), 2, nil)
	p, ok := s.Latest("l")
	if !ok || p.Value != 5 {
		t.Errorf("latest = %v, %v", p, ok)
	}
}

func TestNamesAndConcurrentIngest(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				s.Append("concurrent", t0.Add(time.Duration(w*500+i)*time.Millisecond), float64(i), nil)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if s.Len("concurrent") != 2000 {
		t.Errorf("len = %d", s.Len("concurrent"))
	}
	if names := s.Names(); len(names) != 1 || names[0] != "concurrent" {
		t.Errorf("names = %v", names)
	}
}
