// Package tseries implements the multi-model database's time-series engine
// (paper §II-B): append-optimized chunked storage for high ingestion rates,
// time-range queries, windowed aggregation, continuous pre-aggregation
// (the rollups the paper proposes for device/edge pre-aggregation in
// §IV-B3) and retention-based expiry.
//
// The gtimeseries(...) table expression in internal/multimodel exposes the
// engine to SQL.
package tseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// ChunkSize is the number of points per storage chunk.
const ChunkSize = 4096

// Point is one sample.
type Point struct {
	Ts    time.Time
	Value float64
	Tags  map[string]string
}

// AggKind selects a windowed aggregate.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "agg?"
	}
}

// Bucket is one aggregated window.
type Bucket struct {
	Start time.Time
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Value extracts the requested aggregate from the bucket.
func (b Bucket) Value(k AggKind) float64 {
	switch k {
	case AggCount:
		return float64(b.Count)
	case AggSum:
		return b.Sum
	case AggAvg:
		if b.Count == 0 {
			return 0
		}
		return b.Sum / float64(b.Count)
	case AggMin:
		return b.Min
	case AggMax:
		return b.Max
	default:
		return 0
	}
}

func (b *Bucket) add(v float64) {
	if b.Count == 0 {
		b.Min, b.Max = v, v
	} else {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.Count++
	b.Sum += v
}

// chunk is a run of points, kept sorted lazily.
type chunk struct {
	points []Point
	sorted bool
}

func (c *chunk) sortIfNeeded() {
	if c.sorted {
		return
	}
	sort.SliceStable(c.points, func(i, j int) bool { return c.points[i].Ts.Before(c.points[j].Ts) })
	c.sorted = true
}

// series is one named time series.
type series struct {
	sealed []*chunk
	active *chunk
	// rollups maps bucket width -> bucketStartUnixNano -> accumulator.
	rollups map[time.Duration]map[int64]*Bucket
}

// Store is a collection of named time series.
type Store struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{series: make(map[string]*series)} }

func (s *Store) get(name string) *series {
	ser, ok := s.series[name]
	if !ok {
		ser = &series{active: &chunk{sorted: true}, rollups: map[time.Duration]map[int64]*Bucket{}}
		s.series[name] = ser
	}
	return ser
}

// Append ingests one sample. Appends are O(1) amortized; out-of-order
// samples within a chunk are tolerated (sorted lazily at query time).
func (s *Store) Append(name string, ts time.Time, value float64, tags map[string]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.get(name)
	c := ser.active
	if n := len(c.points); n > 0 && c.sorted && ts.Before(c.points[n-1].Ts) {
		c.sorted = false
	}
	c.points = append(c.points, Point{Ts: ts, Value: value, Tags: tags})
	if len(c.points) >= ChunkSize {
		c.sortIfNeeded()
		ser.sealed = append(ser.sealed, c)
		ser.active = &chunk{sorted: true}
	}
	// Maintain continuous rollups incrementally.
	for width, buckets := range ser.rollups {
		start := ts.Truncate(width).UnixNano()
		b, ok := buckets[start]
		if !ok {
			b = &Bucket{Start: time.Unix(0, start).UTC()}
			buckets[start] = b
		}
		b.add(value)
	}
}

// Len reports the number of stored points in a series.
func (s *Store) Len(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[name]
	if !ok {
		return 0
	}
	n := len(ser.active.points)
	for _, c := range ser.sealed {
		n += len(c.points)
	}
	return n
}

// Names lists the stored series.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Range returns points with from <= ts < to in time order. A nil tags map
// matches everything; otherwise every listed tag must match.
func (s *Store) Range(name string, from, to time.Time, tags map[string]string) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		return nil
	}
	var out []Point
	scan := func(c *chunk) {
		c.sortIfNeeded()
		// Binary search the start.
		i := sort.Search(len(c.points), func(i int) bool { return !c.points[i].Ts.Before(from) })
		for ; i < len(c.points); i++ {
			p := c.points[i]
			if !p.Ts.Before(to) {
				return
			}
			if tagsMatch(p.Tags, tags) {
				out = append(out, p)
			}
		}
	}
	for _, c := range ser.sealed {
		scan(c)
	}
	scan(ser.active)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts.Before(out[j].Ts) })
	return out
}

func tagsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// Window aggregates [from, to) into fixed-width buckets on the fly. When a
// continuous rollup of exactly this width exists, it is served from the
// pre-aggregated state instead (the fast path the paper motivates).
func (s *Store) Window(name string, from, to time.Time, width time.Duration, tags map[string]string) []Bucket {
	if width <= 0 {
		return nil
	}
	// Rollup fast path (tag filters require the raw points).
	if tags == nil {
		s.mu.RLock()
		ser, ok := s.series[name]
		if ok {
			if buckets, ok2 := ser.rollups[width]; ok2 {
				out := collectRollup(buckets, from, to)
				s.mu.RUnlock()
				return out
			}
		}
		s.mu.RUnlock()
	}
	points := s.Range(name, from, to, tags)
	var out []Bucket
	var cur *Bucket
	for _, p := range points {
		start := p.Ts.Truncate(width)
		if cur == nil || !cur.Start.Equal(start) {
			out = append(out, Bucket{Start: start})
			cur = &out[len(out)-1]
		}
		cur.add(p.Value)
	}
	return out
}

func collectRollup(buckets map[int64]*Bucket, from, to time.Time) []Bucket {
	var out []Bucket
	for start, b := range buckets {
		t := time.Unix(0, start)
		if t.Before(from) || !t.Before(to) {
			continue
		}
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// EnableRollup registers a continuous pre-aggregation of the given bucket
// width; existing points are back-filled and future appends maintain it
// incrementally.
func (s *Store) EnableRollup(name string, width time.Duration) error {
	if width <= 0 {
		return fmt.Errorf("tseries: rollup width must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ser := s.get(name)
	if _, exists := ser.rollups[width]; exists {
		return nil
	}
	buckets := map[int64]*Bucket{}
	fill := func(c *chunk) {
		for _, p := range c.points {
			start := p.Ts.Truncate(width).UnixNano()
			b, ok := buckets[start]
			if !ok {
				b = &Bucket{Start: time.Unix(0, start).UTC()}
				buckets[start] = b
			}
			b.add(p.Value)
		}
	}
	for _, c := range ser.sealed {
		fill(c)
	}
	fill(ser.active)
	ser.rollups[width] = buckets
	return nil
}

// Expire drops points older than cutoff (retention); rollup buckets whose
// window ended before cutoff are dropped with them. Returns the number of
// points removed.
func (s *Store) Expire(name string, cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		return 0
	}
	removed := 0
	trim := func(c *chunk) {
		c.sortIfNeeded()
		i := sort.Search(len(c.points), func(i int) bool { return !c.points[i].Ts.Before(cutoff) })
		removed += i
		c.points = c.points[i:]
	}
	var sealed []*chunk
	for _, c := range ser.sealed {
		trim(c)
		if len(c.points) > 0 {
			sealed = append(sealed, c)
		}
	}
	ser.sealed = sealed
	trim(ser.active)
	for width, buckets := range ser.rollups {
		for start := range buckets {
			if time.Unix(0, start).Add(width).Before(cutoff) {
				delete(buckets, start)
			}
		}
	}
	return removed
}

// Latest returns the most recent point of a series.
func (s *Store) Latest(name string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		return Point{}, false
	}
	best := Point{Ts: time.Unix(0, math.MinInt64)}
	found := false
	consider := func(c *chunk) {
		for _, p := range c.points {
			if !found || p.Ts.After(best.Ts) {
				best = p
				found = true
			}
		}
	}
	for _, c := range ser.sealed {
		consider(c)
	}
	consider(ser.active)
	return best, found
}
