// Package types defines the value system shared by every engine in the
// repository: typed datums, rows, schemas and the comparison/hashing
// primitives the storage, execution and transaction layers build on.
//
// The FI-MPPDB reproduction (internal/cluster, internal/exec), the
// multi-model engines (internal/graph, internal/tseries, internal/spatial)
// and the GMDB tree model (internal/gmdb) all speak Datum so that data can
// flow between engines without conversion, which is the core promise of the
// paper's unified storage engine (§II-B).
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the primitive datum types supported by the SQL subset.
type Kind uint8

// Supported datum kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	case KindBytes:
		return "BYTEA"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name into a Kind. It accepts the common
// aliases used by the parser (INT/INTEGER/BIGINT, FLOAT/DOUBLE/REAL, ...).
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "INT4", "INT8":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "FLOAT8", "NUMERIC", "DECIMAL":
		return KindFloat, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return KindString, nil
	case "BYTEA", "BLOB", "BYTES":
		return KindBytes, nil
	case "TIMESTAMP", "TIME", "DATE", "DATETIME":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Datum is a single SQL value. The zero Datum is NULL.
type Datum struct {
	kind Kind
	// i holds bool (0/1), int64, or time as UnixNano depending on kind.
	i int64
	f float64
	s string
	b []byte
}

// Null is the NULL datum.
var Null = Datum{}

// NewBool returns a BOOL datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{kind: KindBool, i: i}
}

// NewInt returns a BIGINT datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a DOUBLE datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a TEXT datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBytes returns a BYTEA datum. The slice is not copied.
func NewBytes(v []byte) Datum { return Datum{kind: KindBytes, b: v} }

// NewTime returns a TIMESTAMP datum with nanosecond precision.
func NewTime(v time.Time) Datum { return Datum{kind: KindTime, i: v.UnixNano()} }

// Kind reports the datum's kind.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Bool returns the boolean value; it panics if the kind is not BOOL.
func (d Datum) Bool() bool {
	if d.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s datum", d.kind))
	}
	return d.i != 0
}

// Int returns the integer value; it panics if the kind is not BIGINT.
func (d Datum) Int() int64 {
	if d.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s datum", d.kind))
	}
	return d.i
}

// Float returns the float value, converting from BIGINT if needed.
func (d Datum) Float() float64 {
	switch d.kind {
	case KindFloat:
		return d.f
	case KindInt:
		return float64(d.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s datum", d.kind))
	}
}

// Str returns the string value; it panics if the kind is not TEXT.
func (d Datum) Str() string {
	if d.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s datum", d.kind))
	}
	return d.s
}

// Bytes returns the byte value; it panics if the kind is not BYTEA.
func (d Datum) Bytes() []byte {
	if d.kind != KindBytes {
		panic(fmt.Sprintf("types: Bytes() on %s datum", d.kind))
	}
	return d.b
}

// Time returns the timestamp value; it panics if the kind is not TIMESTAMP.
func (d Datum) Time() time.Time {
	if d.kind != KindTime {
		panic(fmt.Sprintf("types: Time() on %s datum", d.kind))
	}
	return time.Unix(0, d.i).UTC()
}

// String renders the datum for display and for canonical plan text.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return d.s
	case KindBytes:
		return fmt.Sprintf("\\x%x", d.b)
	case KindTime:
		return d.Time().Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("<bad datum kind %d>", d.kind)
	}
}

// numericKinds reports whether both kinds are numeric (INT or FLOAT), which
// enables implicit numeric comparison across the two.
func numericKinds(a, b Kind) bool {
	num := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return num(a) && num(b)
}

// Compare orders two datums. NULL sorts before every non-NULL value.
// Cross-kind numeric comparison (INT vs FLOAT) is supported; any other kind
// mismatch returns an error.
func Compare(a, b Datum) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.kind != b.kind {
		if numericKinds(a.kind, b.kind) {
			return cmpFloat(a.Float(), b.Float()), nil
		}
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindBool:
		return cmpInt(a.i, b.i), nil
	case KindInt:
		return cmpInt(a.i, b.i), nil
	case KindFloat:
		return cmpFloat(a.f, b.f), nil
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindBytes:
		return strings.Compare(string(a.b), string(b.b)), nil
	case KindTime:
		return cmpInt(a.i, b.i), nil
	default:
		return 0, fmt.Errorf("types: cannot compare kind %s", a.kind)
	}
}

// MustCompare is Compare for callers that have already type-checked.
func MustCompare(a, b Datum) int {
	c, err := Compare(a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports datum equality under Compare semantics (NULL == NULL here;
// SQL ternary logic is handled by expression evaluation, not by this
// low-level helper).
func Equal(a, b Datum) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Hash returns a 64-bit hash of the datum, used for hash distribution
// (shard routing) and hash joins. Numeric kinds hash by their float64 value
// so that INT 3 and FLOAT 3.0 land in the same bucket, matching Compare.
func Hash(d Datum) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch d.kind {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindBool:
		buf[0] = 1
		buf[1] = byte(d.i)
		h.Write(buf[:2])
	case KindInt, KindFloat:
		buf[0] = 2
		bits := math.Float64bits(d.Float())
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(d.s))
	case KindBytes:
		buf[0] = 4
		h.Write(buf[:1])
		h.Write(d.b)
	case KindTime:
		buf[0] = 5
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(uint64(d.i) >> (8 * i))
		}
		h.Write(buf[:9])
	}
	return h.Sum64()
}

// Row is a tuple of datums positionally matching a Schema.
type Row []Datum

// Clone returns a deep-enough copy of the row (datum payloads are immutable
// by convention, so a shallow copy of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from (name, kind) pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Project returns a new schema containing the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Concat returns the schema of a join output: s's columns followed by o's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// String renders the schema as "(a BIGINT, b TEXT)".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CheckRow validates that a row is assignable to the schema: same arity and
// each datum either NULL or of (a numeric-compatible version of) the column
// kind. It returns the possibly-coerced row.
func (s *Schema) CheckRow(r Row) (Row, error) {
	if len(r) != len(s.Columns) {
		return nil, fmt.Errorf("types: row arity %d does not match schema arity %d", len(r), len(s.Columns))
	}
	out := r
	for i, d := range r {
		if d.IsNull() || d.kind == s.Columns[i].Kind {
			continue
		}
		coerced, err := Coerce(d, s.Columns[i].Kind)
		if err != nil {
			return nil, fmt.Errorf("types: column %q: %v", s.Columns[i].Name, err)
		}
		if &out[0] == &r[0] {
			out = r.Clone()
		}
		out[i] = coerced
	}
	return out, nil
}

// Coerce converts a datum to the target kind where a lossless or standard
// SQL implicit conversion exists (INT<->FLOAT, anything->TEXT via String).
func Coerce(d Datum, to Kind) (Datum, error) {
	if d.kind == to || d.IsNull() {
		return d, nil
	}
	switch to {
	case KindFloat:
		if d.kind == KindInt {
			return NewFloat(float64(d.i)), nil
		}
	case KindInt:
		if d.kind == KindFloat {
			if d.f == math.Trunc(d.f) {
				return NewInt(int64(d.f)), nil
			}
			return Null, fmt.Errorf("cannot coerce non-integral %v to BIGINT", d.f)
		}
		if d.kind == KindBool {
			return NewInt(d.i), nil
		}
	case KindString:
		return NewString(d.String()), nil
	case KindTime:
		if d.kind == KindInt {
			return Datum{kind: KindTime, i: d.i}, nil
		}
		if d.kind == KindString {
			t, err := time.Parse(time.RFC3339, d.s)
			if err != nil {
				return Null, fmt.Errorf("cannot parse %q as TIMESTAMP", d.s)
			}
			return NewTime(t), nil
		}
	}
	return Null, fmt.Errorf("cannot coerce %s to %s", d.kind, to)
}
