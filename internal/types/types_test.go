package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindFromName(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "BIGINT": KindInt, "Integer": KindInt,
		"text": KindString, "VARCHAR": KindString,
		"double": KindFloat, "REAL": KindFloat,
		"bool": KindBool, "timestamp": KindTime, "bytea": KindBytes,
	}
	for name, want := range cases {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("frobnicate"); err == nil {
		t.Error("KindFromName(frobnicate) should fail")
	}
}

func TestDatumAccessors(t *testing.T) {
	now := time.Now().Truncate(time.Microsecond)
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("bool accessor broken")
	}
	if NewInt(-7).Int() != -7 {
		t.Error("int accessor broken")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("float accessor broken")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("int->float widening broken")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("string accessor broken")
	}
	if !NewTime(now).Time().Equal(now) {
		t.Error("time accessor broken")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull broken")
	}
}

func TestDatumAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Float on string", func() { NewString("x").Float() })
	mustPanic("Time on int", func() { NewInt(1).Time() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewString("a"), NewString("b"), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("Compare(int, string) should fail")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		return MustCompare(x, y) == -MustCompare(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualImpliesSameHash(t *testing.T) {
	f := func(v int64) bool {
		return Hash(NewInt(v)) == Hash(NewFloat(float64(v)))
	}
	// INT and FLOAT with the same numeric value must hash identically so
	// that shard routing agrees with Compare. Restrict to values exactly
	// representable in float64.
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(v int32) bool { return f(int64(v)) }, cfg); err != nil {
		t.Error(err)
	}
	if Hash(NewString("abc")) == Hash(NewString("abd")) {
		t.Error("suspicious string hash collision")
	}
}

func TestHashStability(t *testing.T) {
	d := NewString("shard-key")
	if Hash(d) != Hash(NewString("shard-key")) {
		t.Error("hash must be deterministic")
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema(Column{"a", KindInt}, Column{"b", KindString})
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	if s.ColumnIndex("B") != 1 || s.ColumnIndex("a") != 0 || s.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex broken")
	}
	p := s.Project([]int{1})
	if p.Len() != 1 || p.Columns[0].Name != "b" {
		t.Error("Project broken")
	}
	j := s.Concat(p)
	if j.Len() != 3 || j.Columns[2].Name != "b" {
		t.Error("Concat broken")
	}
	if got := s.String(); got != "(a BIGINT, b TEXT)" {
		t.Errorf("Schema.String() = %q", got)
	}
}

func TestCheckRowCoercion(t *testing.T) {
	s := NewSchema(Column{"a", KindFloat}, Column{"b", KindString})
	r, err := s.CheckRow(Row{NewInt(3), NewString("x")})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Kind() != KindFloat || r[0].Float() != 3 {
		t.Errorf("int not coerced to float: %v", r[0])
	}
	if _, err := s.CheckRow(Row{NewInt(3)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := s.CheckRow(Row{NewString("x"), NewString("y")}); err == nil {
		t.Error("string->float should fail")
	}
	// NULL is assignable anywhere.
	if _, err := s.CheckRow(Row{Null, Null}); err != nil {
		t.Errorf("NULL row should pass: %v", err)
	}
}

func TestCoerce(t *testing.T) {
	if d, err := Coerce(NewFloat(4), KindInt); err != nil || d.Int() != 4 {
		t.Errorf("Coerce(4.0, INT) = %v, %v", d, err)
	}
	if _, err := Coerce(NewFloat(4.5), KindInt); err == nil {
		t.Error("Coerce(4.5, INT) should fail")
	}
	if d, err := Coerce(NewInt(7), KindString); err != nil || d.Str() != "7" {
		t.Errorf("Coerce(7, TEXT) = %v, %v", d, err)
	}
	if d, err := Coerce(NewString("2020-01-02T03:04:05Z"), KindTime); err != nil || d.Time().Year() != 2020 {
		t.Errorf("Coerce(text, TIMESTAMP) = %v, %v", d, err)
	}
	if _, err := Coerce(NewBool(true), KindTime); err == nil {
		t.Error("bool->time should fail")
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{NewInt(1), NewInt(2)}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
	if got := r.String(); got != "(1, 2)" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestDatumString(t *testing.T) {
	cases := map[string]Datum{
		"NULL": Null, "true": NewBool(true), "-5": NewInt(-5),
		"2.5": NewFloat(2.5), "hi": NewString("hi"),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestBytesDatum(t *testing.T) {
	b := NewBytes([]byte{1, 2, 3})
	if string(b.Bytes()) != "\x01\x02\x03" || b.Kind() != KindBytes {
		t.Error("bytes accessors broken")
	}
	if got := b.String(); got != "\\x010203" {
		t.Errorf("bytes String() = %q", got)
	}
	if c, err := Compare(NewBytes([]byte("a")), NewBytes([]byte("b"))); err != nil || c != -1 {
		t.Errorf("bytes compare = %d, %v", c, err)
	}
	if Hash(b) == Hash(NewBytes([]byte{3, 2, 1})) {
		t.Error("suspicious bytes hash collision")
	}
	if Hash(Null) == Hash(NewBool(false)) {
		t.Error("null and false must hash differently")
	}
	if Hash(NewTime(time.Unix(1, 0))) == Hash(NewTime(time.Unix(2, 0))) {
		t.Error("time hash collision")
	}
}

func TestEqualHelper(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("numeric cross-kind equality")
	}
	if Equal(NewInt(3), NewString("3")) {
		t.Error("int/string must not be Equal")
	}
	if !Equal(Null, Null) {
		t.Error("helper-level NULL equality")
	}
}
