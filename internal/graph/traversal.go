package graph

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/types"
)

// Traversal is a parsed Gremlin-subset traversal bound to a graph.
//
// Supported steps: V([id]), hasLabel(l), has(key[, value | pred]),
// out/in/both([label]), outE/inE([label]), outV()/inV(), values(k...),
// count(), limit(n), dedup(), where(sub-traversal), and the predicates
// eq/neq/gt/gte/lt/lte used inside has() or standalone as value filters
// (count().gt(3)).
type Traversal struct {
	g     *Graph
	steps []step
	src   string
}

// step transforms an element stream.
type step struct {
	name string
	args []arg
	sub  *Traversal // for where()
}

// arg is one parsed argument: a datum literal or a nested predicate call.
type arg struct {
	lit  types.Datum
	pred *predCall
}

type predCall struct {
	name string
	val  types.Datum
}

// elem is one traversal stream element: exactly one field is set.
type elem struct {
	v   *Vertex
	e   *Edge
	d   types.Datum
	row types.Row
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

// ParseTraversal parses Gremlin-subset text like
// "g.V().has('kind','person').inE('call').count()". The leading "g." is
// optional. Unquoted identifiers in argument position are treated as string
// literals (the paper writes has(cid,11111)).
func (g *Graph) ParseTraversal(src string) (*Traversal, error) {
	p := &tparser{src: src}
	t, err := p.parseChain(g)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("graph: trailing input %q in traversal", p.src[p.pos:])
	}
	t.src = src
	return t, nil
}

type tparser struct {
	src string
	pos int
}

func (p *tparser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *tparser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *tparser) parseChain(g *Graph) (*Traversal, error) {
	t := &Traversal{g: g}
	p.skipSpace()
	// Optional leading "g."
	save := p.pos
	if id := p.ident(); id == "g" {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '.' {
			p.pos++
		} else {
			p.pos = save
		}
	} else {
		p.pos = save
	}
	for {
		p.skipSpace()
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("graph: expected step name at offset %d", p.pos)
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '(' {
			return nil, fmt.Errorf("graph: step %s needs parentheses", name)
		}
		p.pos++ // (
		st := step{name: name}
		p.skipSpace()
		if name == "where" {
			sub, err := p.parseChain(g)
			if err != nil {
				return nil, err
			}
			st.sub = sub
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != ')' {
				return nil, fmt.Errorf("graph: unterminated where()")
			}
			p.pos++
		} else {
			for p.pos < len(p.src) && p.src[p.pos] != ')' {
				a, err := p.parseArg()
				if err != nil {
					return nil, err
				}
				st.args = append(st.args, a)
				p.skipSpace()
				if p.pos < len(p.src) && p.src[p.pos] == ',' {
					p.pos++
					p.skipSpace()
				}
			}
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("graph: unterminated step %s(", name)
			}
			p.pos++ // )
		}
		t.steps = append(t.steps, st)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '.' {
			p.pos++
			continue
		}
		return t, nil
	}
}

func (p *tparser) parseArg() (arg, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return arg{}, fmt.Errorf("graph: expected argument")
	}
	c := p.src[p.pos]
	switch {
	case c == '\'' || c == '"':
		quote := c
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return arg{}, fmt.Errorf("graph: unterminated string")
		}
		s := p.src[start:p.pos]
		p.pos++
		return arg{lit: types.NewString(s)}, nil
	case c >= '0' && c <= '9' || c == '-':
		start := p.pos
		p.pos++
		isFloat := false
		for p.pos < len(p.src) {
			ch := p.src[p.pos]
			if ch == '.' {
				isFloat = true
				p.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			p.pos++
		}
		text := p.src[start:p.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return arg{}, fmt.Errorf("graph: bad number %q", text)
			}
			return arg{lit: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return arg{}, fmt.Errorf("graph: bad number %q", text)
		}
		return arg{lit: types.NewInt(n)}, nil
	default:
		id := p.ident()
		if id == "" {
			return arg{}, fmt.Errorf("graph: unexpected character %q in arguments", c)
		}
		p.skipSpace()
		// Nested predicate call gt(3)?
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			p.pos++
			inner, err := p.parseArg()
			if err != nil {
				return arg{}, err
			}
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != ')' {
				return arg{}, fmt.Errorf("graph: unterminated predicate %s(", id)
			}
			p.pos++
			if !validPred(id) {
				return arg{}, fmt.Errorf("graph: unknown predicate %q", id)
			}
			return arg{pred: &predCall{name: id, val: inner.lit}}, nil
		}
		// Bare identifier = string literal (paper style: has(cid,11111)).
		return arg{lit: types.NewString(id)}, nil
	}
}

func validPred(name string) bool {
	switch name {
	case "eq", "neq", "gt", "gte", "lt", "lte":
		return true
	}
	return false
}

func (pc *predCall) matches(v types.Datum) bool {
	if v.IsNull() {
		return false
	}
	c, err := types.Compare(v, pc.val)
	if err != nil {
		return false
	}
	switch pc.name {
	case "eq":
		return c == 0
	case "neq":
		return c != 0
	case "gt":
		return c > 0
	case "gte":
		return c >= 0
	case "lt":
		return c < 0
	case "lte":
		return c <= 0
	}
	return false
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

// Eval runs the traversal and returns relational rows matching
// OutputSchema.
func (t *Traversal) Eval() ([]types.Row, error) {
	elems, err := t.evalFrom(nil)
	if err != nil {
		return nil, err
	}
	var out []types.Row
	for _, e := range elems {
		out = append(out, t.elemRow(e))
	}
	return out, nil
}

// evalFrom evaluates the step chain; start==nil begins with V() semantics
// required as the first step, while a non-nil start element seeds
// sub-traversals in where().
func (t *Traversal) evalFrom(start *elem) ([]elem, error) {
	var cur []elem
	steps := t.steps
	if start != nil {
		cur = []elem{*start}
	} else {
		if len(steps) == 0 || (steps[0].name != "V" && steps[0].name != "E") {
			return nil, fmt.Errorf("graph: traversal must start with V() or E()")
		}
	}
	for i, st := range steps {
		if start == nil && i == 0 {
			var err error
			cur, err = t.sourceStep(st)
			if err != nil {
				return nil, err
			}
			continue
		}
		var err error
		cur, err = t.applyStep(st, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (t *Traversal) sourceStep(st step) ([]elem, error) {
	switch st.name {
	case "V":
		if len(st.args) == 1 && st.args[0].lit.Kind() == types.KindInt {
			if v, ok := t.g.Vertex(VID(st.args[0].lit.Int())); ok {
				return []elem{{v: v}}, nil
			}
			return nil, nil
		}
		var out []elem
		for _, id := range t.g.allVertices() {
			v, _ := t.g.Vertex(id)
			out = append(out, elem{v: v})
		}
		return out, nil
	case "E":
		var out []elem
		t.g.mu.RLock()
		defer t.g.mu.RUnlock()
		for _, id := range t.g.allVerticesLocked() {
			for _, e := range t.g.out[id] {
				out = append(out, elem{e: e})
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("graph: traversal must start with V() or E(), got %s()", st.name)
	}
}

// allVerticesLocked is allVertices without locking (caller holds g.mu).
func (g *Graph) allVerticesLocked() []VID {
	ids := make([]VID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func (t *Traversal) applyStep(st step, cur []elem) ([]elem, error) {
	switch st.name {
	case "hasLabel":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("graph: hasLabel needs one argument")
		}
		label := st.args[0].lit.Str()
		return filterElems(cur, func(e elem) bool {
			if e.v != nil {
				return e.v.Label == label
			}
			if e.e != nil {
				return e.e.Label == label
			}
			return false
		}), nil
	case "has":
		return t.applyHas(st, cur)
	case "out", "in", "both":
		return t.applyAdjacent(st, cur)
	case "outE", "inE", "bothE":
		return t.applyIncident(st, cur)
	case "outV":
		return mapElems(cur, func(e elem) (elem, bool) {
			if e.e == nil {
				return elem{}, false
			}
			v, ok := t.g.Vertex(e.e.From)
			return elem{v: v}, ok
		}), nil
	case "inV":
		return mapElems(cur, func(e elem) (elem, bool) {
			if e.e == nil {
				return elem{}, false
			}
			v, ok := t.g.Vertex(e.e.To)
			return elem{v: v}, ok
		}), nil
	case "values":
		if len(st.args) == 0 {
			return nil, fmt.Errorf("graph: values needs at least one key")
		}
		var out []elem
		for _, e := range cur {
			props := elemProps(e)
			if props == nil {
				continue
			}
			row := make(types.Row, len(st.args))
			missing := false
			for i, a := range st.args {
				v, ok := props[a.lit.Str()]
				if !ok {
					missing = true
					break
				}
				row[i] = v
			}
			if !missing {
				out = append(out, elem{row: row})
			}
		}
		return out, nil
	case "count":
		return []elem{{d: types.NewInt(int64(len(cur)))}}, nil
	case "limit":
		if len(st.args) != 1 || st.args[0].lit.Kind() != types.KindInt {
			return nil, fmt.Errorf("graph: limit needs an integer")
		}
		n := int(st.args[0].lit.Int())
		if n < len(cur) {
			cur = cur[:n]
		}
		return cur, nil
	case "dedup":
		seen := map[string]struct{}{}
		var out []elem
		for _, e := range cur {
			k := elemKey(e)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, e)
		}
		return out, nil
	case "where":
		var out []elem
		for _, e := range cur {
			e := e
			sub, err := st.sub.evalFrom(&e)
			if err != nil {
				return nil, err
			}
			if truthy(sub) {
				out = append(out, e)
			}
		}
		return out, nil
	case "eq", "neq", "gt", "gte", "lt", "lte":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("graph: %s needs one argument", st.name)
		}
		pc := &predCall{name: st.name, val: st.args[0].lit}
		return filterElems(cur, func(e elem) bool {
			return !e.d.IsNull() && pc.matches(e.d)
		}), nil
	default:
		return nil, fmt.Errorf("graph: unknown step %q", st.name)
	}
}

func (t *Traversal) applyHas(st step, cur []elem) ([]elem, error) {
	if len(st.args) < 1 || len(st.args) > 2 {
		return nil, fmt.Errorf("graph: has needs one or two arguments")
	}
	key := st.args[0].lit.Str()
	return filterElems(cur, func(e elem) bool {
		props := elemProps(e)
		if props == nil {
			return false
		}
		v, ok := props[key]
		if !ok {
			return false
		}
		if len(st.args) == 1 {
			return true
		}
		a := st.args[1]
		if a.pred != nil {
			return a.pred.matches(v)
		}
		return types.Equal(v, a.lit)
	}), nil
}

func (t *Traversal) applyAdjacent(st step, cur []elem) ([]elem, error) {
	label := ""
	if len(st.args) == 1 {
		label = st.args[0].lit.Str()
	}
	t.g.mu.RLock()
	defer t.g.mu.RUnlock()
	var out []elem
	for _, e := range cur {
		if e.v == nil {
			continue
		}
		if st.name == "out" || st.name == "both" {
			for _, ed := range t.g.out[e.v.ID] {
				if label == "" || ed.Label == label {
					out = append(out, elem{v: t.g.vertices[ed.To]})
				}
			}
		}
		if st.name == "in" || st.name == "both" {
			for _, ed := range t.g.in[e.v.ID] {
				if label == "" || ed.Label == label {
					out = append(out, elem{v: t.g.vertices[ed.From]})
				}
			}
		}
	}
	return out, nil
}

func (t *Traversal) applyIncident(st step, cur []elem) ([]elem, error) {
	label := ""
	if len(st.args) == 1 {
		label = st.args[0].lit.Str()
	}
	t.g.mu.RLock()
	defer t.g.mu.RUnlock()
	var out []elem
	for _, e := range cur {
		if e.v == nil {
			continue
		}
		if st.name == "outE" || st.name == "bothE" {
			for _, ed := range t.g.out[e.v.ID] {
				if label == "" || ed.Label == label {
					out = append(out, elem{e: ed})
				}
			}
		}
		if st.name == "inE" || st.name == "bothE" {
			for _, ed := range t.g.in[e.v.ID] {
				if label == "" || ed.Label == label {
					out = append(out, elem{e: ed})
				}
			}
		}
	}
	return out, nil
}

func filterElems(in []elem, keep func(elem) bool) []elem {
	var out []elem
	for _, e := range in {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

func mapElems(in []elem, f func(elem) (elem, bool)) []elem {
	var out []elem
	for _, e := range in {
		if m, ok := f(e); ok {
			out = append(out, m)
		}
	}
	return out
}

func elemProps(e elem) map[string]types.Datum {
	if e.v != nil {
		return e.v.Props
	}
	if e.e != nil {
		return e.e.Props
	}
	return nil
}

func elemKey(e elem) string {
	switch {
	case e.v != nil:
		return fmt.Sprintf("v%d", e.v.ID)
	case e.e != nil:
		return fmt.Sprintf("e%d-%d-%s", e.e.From, e.e.To, e.e.Label)
	case e.row != nil:
		return "r" + e.row.String()
	default:
		return "d" + e.d.String()
	}
}

// truthy decides where() semantics: a sub-traversal passes if it produced
// any element (boolean datums must include a true).
func truthy(elems []elem) bool {
	if len(elems) == 0 {
		return false
	}
	allBool := true
	for _, e := range elems {
		if e.d.Kind() != types.KindBool {
			allBool = false
			break
		}
	}
	if !allBool {
		return true
	}
	for _, e := range elems {
		if e.d.Bool() {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Relational output
// ---------------------------------------------------------------------------

// OutputSchema derives the relational schema of the traversal's results
// from its final step, per the unified framework's table-expression
// contract.
func (t *Traversal) OutputSchema() *types.Schema {
	if len(t.steps) == 0 {
		return types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	}
	last := t.steps[len(t.steps)-1]
	switch last.name {
	case "values":
		cols := make([]types.Column, len(last.args))
		for i, a := range last.args {
			cols[i] = types.Column{Name: strings.ToLower(a.lit.Str()), Kind: types.KindNull}
		}
		return &types.Schema{Columns: cols}
	case "count":
		return types.NewSchema(types.Column{Name: "count", Kind: types.KindInt})
	case "eq", "neq", "gt", "gte", "lt", "lte":
		return types.NewSchema(types.Column{Name: "value", Kind: types.KindNull})
	case "outE", "inE", "bothE", "E":
		return types.NewSchema(
			types.Column{Name: "from", Kind: types.KindInt},
			types.Column{Name: "to", Kind: types.KindInt},
			types.Column{Name: "label", Kind: types.KindString},
		)
	default:
		return types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "label", Kind: types.KindString},
		)
	}
}

// elemRow converts one stream element to a relational row under
// OutputSchema.
func (t *Traversal) elemRow(e elem) types.Row {
	switch {
	case e.row != nil:
		return e.row
	case e.v != nil:
		return types.Row{types.NewInt(int64(e.v.ID)), types.NewString(e.v.Label)}
	case e.e != nil:
		return types.Row{types.NewInt(int64(e.e.From)), types.NewInt(int64(e.e.To)), types.NewString(e.e.Label)}
	default:
		return types.Row{e.d}
	}
}
