// Package graph implements the multi-model database's graph engine
// (paper §II-B): an in-memory property graph stored relationally (vertex
// and edge tables, as the paper's unified storage engine prescribes) with a
// Gremlin-subset traversal language compiled and evaluated natively.
//
// The ggraph(...) table expression in internal/multimodel compiles its
// traversal text with ParseTraversal and streams the result rows into the
// relational executor, reproducing Example 1.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// VID identifies a vertex.
type VID int64

// Vertex is a labelled property vertex.
type Vertex struct {
	ID    VID
	Label string
	Props map[string]types.Datum
}

// Edge is a directed labelled edge with properties.
type Edge struct {
	From, To VID
	Label    string
	Props    map[string]types.Datum
}

// Graph is an in-memory property graph. Methods are safe for concurrent
// use; traversals see a consistent snapshot only in the absence of
// concurrent writers (graph analytics in FI-MPPDB run over loaded data).
type Graph struct {
	mu       sync.RWMutex
	vertices map[VID]*Vertex
	out      map[VID][]*Edge
	in       map[VID][]*Edge
	byLabel  map[string][]VID
	nextID   VID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[VID]*Vertex),
		out:      make(map[VID][]*Edge),
		in:       make(map[VID][]*Edge),
		byLabel:  make(map[string][]VID),
		nextID:   1,
	}
}

// AddVertex inserts a vertex and returns its id. Props may be nil.
func (g *Graph) AddVertex(label string, props map[string]types.Datum) VID {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.nextID
	g.nextID++
	if props == nil {
		props = map[string]types.Datum{}
	}
	g.vertices[id] = &Vertex{ID: id, Label: label, Props: props}
	g.byLabel[label] = append(g.byLabel[label], id)
	return id
}

// AddEdge inserts a directed edge; both endpoints must exist.
func (g *Graph) AddEdge(from, to VID, label string, props map[string]types.Datum) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.vertices[from]; !ok {
		return fmt.Errorf("graph: vertex %d does not exist", from)
	}
	if _, ok := g.vertices[to]; !ok {
		return fmt.Errorf("graph: vertex %d does not exist", to)
	}
	if props == nil {
		props = map[string]types.Datum{}
	}
	e := &Edge{From: from, To: to, Label: label, Props: props}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// Vertex returns a vertex by id.
func (g *Graph) Vertex(id VID) (*Vertex, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	return v, ok
}

// VertexCount returns the number of vertices.
func (g *Graph) VertexCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices)
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// allVertices returns vertex ids in insertion (id) order for deterministic
// traversal output.
func (g *Graph) allVertices() []VID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]VID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// VertexEdgeTables exports the graph in the unified storage engine's
// relational form (paper §II-B: "graphs are represented through tables for
// vertexes and edges"): a (id, label) vertex table and a
// (from, to, label) edge table.
func (g *Graph) VertexEdgeTables() (vrows, erows []types.Row) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]VID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v := g.vertices[id]
		vrows = append(vrows, types.Row{types.NewInt(int64(v.ID)), types.NewString(v.Label)})
		for _, e := range g.out[id] {
			erows = append(erows, types.Row{
				types.NewInt(int64(e.From)), types.NewInt(int64(e.To)), types.NewString(e.Label),
			})
		}
	}
	return vrows, erows
}
