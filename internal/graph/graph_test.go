package graph

import (
	"testing"

	"repro/internal/types"
)

// callGraph builds the paper's Example 1 scenario: persons connected by
// timestamped "call" edges.
func callGraph(t *testing.T) (*Graph, VID, VID) {
	t.Helper()
	g := New()
	suspect := g.AddVertex("person", map[string]types.Datum{
		"cid": types.NewInt(11111), "phone": types.NewString("555-0100"),
	})
	quiet := g.AddVertex("person", map[string]types.Datum{
		"cid": types.NewInt(22222), "phone": types.NewString("555-0101"),
	})
	var callers []VID
	for i := 0; i < 5; i++ {
		callers = append(callers, g.AddVertex("person", map[string]types.Datum{
			"cid": types.NewInt(int64(30000 + i)),
		}))
	}
	// suspect receives 4 recent calls (ts >= 20180601), 1 old.
	for i, c := range callers[:4] {
		if err := g.AddEdge(c, suspect, "call", map[string]types.Datum{"ts": types.NewInt(int64(20180601 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(callers[4], suspect, "call", map[string]types.Datum{"ts": types.NewInt(20180101)})
	// quiet receives 1 recent call.
	g.AddEdge(callers[0], quiet, "call", map[string]types.Datum{"ts": types.NewInt(20180701)})
	return g, suspect, quiet
}

func eval(t *testing.T, g *Graph, src string) []types.Row {
	t.Helper()
	tr, err := g.ParseTraversal(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rows, err := tr.Eval()
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return rows
}

func TestAddAndCount(t *testing.T) {
	g, _, _ := callGraph(t)
	if g.VertexCount() != 7 {
		t.Errorf("vertices = %d", g.VertexCount())
	}
	if g.EdgeCount() != 6 {
		t.Errorf("edges = %d", g.EdgeCount())
	}
	if err := g.AddEdge(999, 1, "x", nil); err == nil {
		t.Error("edge to missing vertex must fail")
	}
}

func TestVCountTraversal(t *testing.T) {
	g, _, _ := callGraph(t)
	rows := eval(t, g, "g.V().count()")
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Errorf("rows = %v", rows)
	}
}

func TestHasAndHasLabel(t *testing.T) {
	g, _, _ := callGraph(t)
	rows := eval(t, g, "g.V().hasLabel('person').has('cid', 11111).count()")
	if rows[0][0].Int() != 1 {
		t.Errorf("count = %v", rows[0][0])
	}
	// Unquoted key, paper style.
	rows = eval(t, g, "g.V().has(cid, 11111).values(phone)")
	if len(rows) != 1 || rows[0][0].Str() != "555-0100" {
		t.Errorf("rows = %v", rows)
	}
}

func TestInEWithPredicate(t *testing.T) {
	g, _, _ := callGraph(t)
	// The paper's Example 1 inner traversal: incoming recent calls of the
	// suspect, counted.
	rows := eval(t, g, "g.V().has(cid,11111).inE(call).has(ts, gt(20180131)).count()")
	if len(rows) != 1 || rows[0][0].Int() != 4 {
		t.Errorf("recent call count = %v", rows)
	}
	// count().gt(3) keeps the count value only when it exceeds 3.
	rows = eval(t, g, "g.V().has(cid,11111).inE(call).has(ts, gt(20180131)).count().gt(3)")
	if len(rows) != 1 || rows[0][0].Int() != 4 {
		t.Errorf("gt filter = %v", rows)
	}
	rows = eval(t, g, "g.V().has(cid,22222).inE(call).has(ts, gt(20180131)).count().gt(3)")
	if len(rows) != 0 {
		t.Errorf("quiet person should not pass gt(3): %v", rows)
	}
}

func TestWhereSubTraversal(t *testing.T) {
	g, _, _ := callGraph(t)
	// Example 1 as a row-producing query: all cids with > 3 recent calls.
	rows := eval(t, g, "g.V().hasLabel(person).where(inE(call).has(ts, gt(20180131)).count().gt(3)).values(cid)")
	if len(rows) != 1 || rows[0][0].Int() != 11111 {
		t.Errorf("suspects = %v", rows)
	}
}

func TestOutInBoth(t *testing.T) {
	g := New()
	a := g.AddVertex("n", map[string]types.Datum{"k": types.NewInt(1)})
	b := g.AddVertex("n", map[string]types.Datum{"k": types.NewInt(2)})
	c := g.AddVertex("n", map[string]types.Datum{"k": types.NewInt(3)})
	g.AddEdge(a, b, "knows", nil)
	g.AddEdge(b, c, "knows", nil)
	g.AddEdge(a, c, "likes", nil)

	if rows := eval(t, g, "g.V().has(k,1).out(knows).values(k)"); len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("out = %v", rows)
	}
	if rows := eval(t, g, "g.V().has(k,3).in().count()"); rows[0][0].Int() != 2 {
		t.Errorf("in count = %v", rows)
	}
	if rows := eval(t, g, "g.V().has(k,2).both().count()"); rows[0][0].Int() != 2 {
		t.Errorf("both count = %v", rows)
	}
	// Edge endpoints.
	if rows := eval(t, g, "g.V().has(k,1).outE(likes).inV().values(k)"); len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("outE.inV = %v", rows)
	}
	if rows := eval(t, g, "g.V().has(k,2).inE().outV().values(k)"); len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("inE.outV = %v", rows)
	}
}

func TestLimitDedup(t *testing.T) {
	g := New()
	hub := g.AddVertex("hub", nil)
	for i := 0; i < 5; i++ {
		v := g.AddVertex("leaf", map[string]types.Datum{"i": types.NewInt(int64(i))})
		g.AddEdge(hub, v, "e", nil)
		g.AddEdge(hub, v, "e", nil) // duplicate edges
	}
	rows := eval(t, g, "g.V().hasLabel(hub).out(e).count()")
	if rows[0][0].Int() != 10 {
		t.Errorf("out count = %v", rows)
	}
	rows = eval(t, g, "g.V().hasLabel(hub).out(e).dedup().count()")
	if rows[0][0].Int() != 5 {
		t.Errorf("dedup count = %v", rows)
	}
	rows = eval(t, g, "g.V().hasLabel(leaf).limit(2)")
	if len(rows) != 2 {
		t.Errorf("limit = %v", rows)
	}
}

func TestVById(t *testing.T) {
	g, suspect, _ := callGraph(t)
	rows := eval(t, g, "g.V(1).values(cid)")
	_ = suspect
	if len(rows) != 1 || rows[0][0].Int() != 11111 {
		t.Errorf("V(1) = %v", rows)
	}
	if rows := eval(t, g, "g.V(9999).count()"); rows[0][0].Int() != 0 {
		t.Errorf("missing vertex count = %v", rows)
	}
}

func TestOutputSchemas(t *testing.T) {
	g, _, _ := callGraph(t)
	tr, _ := g.ParseTraversal("g.V().values(cid, phone)")
	s := tr.OutputSchema()
	if s.Len() != 2 || s.Columns[0].Name != "cid" || s.Columns[1].Name != "phone" {
		t.Errorf("values schema = %v", s)
	}
	tr, _ = g.ParseTraversal("g.V().count()")
	if s := tr.OutputSchema(); s.Columns[0].Name != "count" || s.Columns[0].Kind != types.KindInt {
		t.Errorf("count schema = %v", s)
	}
	tr, _ = g.ParseTraversal("g.V().inE(call)")
	if s := tr.OutputSchema(); s.Len() != 3 || s.Columns[0].Name != "from" {
		t.Errorf("edge schema = %v", s)
	}
	tr, _ = g.ParseTraversal("g.V()")
	if s := tr.OutputSchema(); s.Len() != 2 || s.Columns[0].Name != "id" {
		t.Errorf("vertex schema = %v", s)
	}
}

func TestParseErrors(t *testing.T) {
	g := New()
	bad := []string{
		"",
		"g.",
		"g.V",
		"g.V().has('unterminated",
		"g.V().frobnicate()",
		"g.has(k,1)",           // must start with V/E
		"g.V().has(k, zap(3))", // unknown predicate
		"g.V() trailing",
	}
	for _, src := range bad {
		tr, err := g.ParseTraversal(src)
		if err == nil {
			if _, err = tr.Eval(); err == nil {
				t.Errorf("ParseTraversal(%q) should fail", src)
			}
		}
	}
}

func TestVertexEdgeTables(t *testing.T) {
	g := New()
	a := g.AddVertex("x", nil)
	b := g.AddVertex("y", nil)
	g.AddEdge(a, b, "z", nil)
	vrows, erows := g.VertexEdgeTables()
	if len(vrows) != 2 || len(erows) != 1 {
		t.Fatalf("tables = %v / %v", vrows, erows)
	}
	if vrows[0][1].Str() != "x" || erows[0][2].Str() != "z" {
		t.Errorf("rows = %v / %v", vrows, erows)
	}
}

func TestEdgeSourceE(t *testing.T) {
	g := New()
	a := g.AddVertex("n", nil)
	b := g.AddVertex("n", nil)
	g.AddEdge(a, b, "e1", nil)
	g.AddEdge(b, a, "e2", nil)
	rows := eval(t, g, "g.E().count()")
	if rows[0][0].Int() != 2 {
		t.Errorf("E count = %v", rows)
	}
}
