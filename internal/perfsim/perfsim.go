// Package perfsim is a discrete-event simulator of the FI-MPPDB cluster's
// transaction paths, used to regenerate the paper's Fig 3 (GTM-Lite
// scalability) and its ablations.
//
// Why a simulator: the paper measured wall-clock throughput on clusters of
// 1–8 physical machines. This reproduction runs on a single host, where
// wall-clock concurrency cannot express "8 machines worth" of parallel CPU.
// The simulator models the same mechanism the paper's experiment exercises
// — every transaction's sequence of network hops and FCFS service demands
// at data nodes and at the serialized GTM — and measures throughput in
// virtual time. The GTM bottleneck, and GTM-lite's removal of it for
// single-shard transactions, arise from queueing at the single GTM server
// exactly as in the real system; only absolute numbers differ.
//
// The simulation is a closed-loop queueing network: a fixed client
// population issues transactions back-to-back. Transaction paths:
//
//	GTM-lite, single-shard:  CN → DN(work) → done          (no GTM)
//	GTM-lite, multi-shard:   CN → GTM(begin) → k×DN(work) →
//	                         k×DN(prepare) → GTM(end) → k×DN(commit)
//	Baseline, single-shard:  CN → GTM(begin) → DN(work) → GTM(end)
//	                         (+ extra GTM snapshot ops per statement)
//	Baseline, multi-shard:   as GTM-lite multi-shard + extra GTM ops
//
// Servers are FCFS with deterministic service times; transaction starts are
// processed in global time order (arrival-order within a transaction's own
// path is exact; cross-client interleaving at mid-path servers is
// approximated by start order, which preserves work conservation and
// therefore saturation throughput).
package perfsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/transport"
)

// Mode selects the transaction protocol (mirrors cluster.TxnMode).
type Mode uint8

// Protocol modes.
const (
	GTMLite Mode = iota
	Baseline
)

func (m Mode) String() string {
	if m == Baseline {
		return "baseline"
	}
	return "gtm-lite"
}

// Params configures one simulation run. All times are in seconds.
type Params struct {
	DataNodes int
	Mode      Mode
	// SingleShardFraction is the probability a transaction is
	// single-shard (1.0 for the paper's SS workload, 0.9 for MS).
	SingleShardFraction float64
	// ClientsPerDN is the closed-loop population per data node.
	ClientsPerDN int
	// Duration is the virtual time horizon.
	Duration float64

	// GTMService is the serialized service time per GTM request.
	GTMService float64
	// BaselineExtraGTMOps adds per-transaction snapshot requests in
	// baseline mode (the "many-round communication").
	BaselineExtraGTMOps int
	// DNWork is the data-node execution time of one transaction leg.
	DNWork float64
	// MultiShardFanout is the number of shards a multi-shard transaction
	// touches (>= 2).
	MultiShardFanout int
	// PrepareCost and CommitCost are per-shard 2PC phase costs.
	PrepareCost float64
	CommitCost  float64
	// NetHop is the one-way network latency per message.
	NetHop float64
	// CNService is the coordinator's per-transaction parse/route cost
	// (CNs scale out with the cluster, so this is pure latency, not a
	// shared server).
	CNService float64

	Seed int64
}

// DefaultParams returns the parameter set used for the Fig 3 reproduction:
// service demands chosen so a data node saturates near 5 k txn/s and the
// GTM near 13 k baseline transactions/s, reproducing the paper's shape
// (baseline flattens as shards are added; GTM-lite scales linearly on
// single-shard work).
func DefaultParams(dataNodes int, mode Mode, ssFraction float64) Params {
	return Params{
		DataNodes:           dataNodes,
		Mode:                mode,
		SingleShardFraction: ssFraction,
		ClientsPerDN:        16,
		Duration:            5.0,
		GTMService:          25e-6,
		BaselineExtraGTMOps: 1,
		DNWork:              200e-6,
		MultiShardFanout:    2,
		PrepareCost:         40e-6,
		CommitCost:          40e-6,
		NetHop:              50e-6,
		CNService:           20e-6,
		Seed:                1,
	}
}

// CalibrateFromFabric replaces the simulator's hand-set per-transaction
// message estimates with counts measured on the live cluster's transport
// fabric. st must be the fabric counter delta over a run that committed
// `committed` transactions of which `multiShard` ran 2PC, under the same
// TxnMode these params simulate (see experiments.Network / E15 for the
// measurement).
//
// Two knobs are derivable from wire traffic alone:
//
//   - BaselineExtraGTMOps: the baseline path always pays two GTM round
//     trips (GXID+snapshot at begin, dequeue at end); whatever the fabric
//     counted beyond those is the paper's "many-round communication".
//   - MultiShardFanout: prepare messages divided by 2PC transactions is
//     exactly the shards a multi-shard transaction touched.
func (p Params) CalibrateFromFabric(st transport.Stats, committed, multiShard int64) Params {
	if committed <= 0 {
		return p
	}
	if p.Mode == Baseline {
		gtmPerTxn := float64(st.Get(transport.SnapshotReq).Count+st.Get(transport.GTMRound).Count) / float64(committed)
		if extra := int(math.Round(gtmPerTxn)) - 2; extra >= 0 {
			p.BaselineExtraGTMOps = extra
		}
	}
	if multiShard > 0 {
		if fanout := int(math.Round(float64(st.Get(transport.Prepare).Count) / float64(multiShard))); fanout >= 2 {
			p.MultiShardFanout = fanout
		}
	}
	return p
}

// Result summarizes one run.
type Result struct {
	Params         Params
	Completed      int64
	Throughput     float64 // transactions per virtual second
	AvgLatency     float64
	P95Latency     float64
	GTMUtilization float64
	DNUtilization  float64 // mean across data nodes
	GTMRequests    int64
}

func (r Result) String() string {
	return fmt.Sprintf("%s dn=%d ss=%.0f%%: %.0f txn/s (gtm util %.0f%%, dn util %.0f%%)",
		r.Params.Mode, r.Params.DataNodes, r.Params.SingleShardFraction*100,
		r.Throughput, r.GTMUtilization*100, r.DNUtilization*100)
}

// server is an FCFS single server in virtual time.
type server struct {
	free  float64
	busy  float64
	count int64
}

// serve returns the completion time of a request arriving at t.
func (s *server) serve(t, svc float64) float64 {
	start := t
	if s.free > start {
		start = s.free
	}
	s.free = start + svc
	s.busy += svc
	s.count++
	return s.free
}

// event is one scheduled continuation.
type event struct {
	t   float64
	seq uint64
	fn  func(now float64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// sim is the event kernel. Requests to a server are scheduled as events at
// their arrival time, so FCFS order is exact even when a transaction visits
// the same server several times with other work in between (the GTM begin /
// end pattern).
type sim struct {
	h   eventHeap
	seq uint64
}

func (s *sim) at(t float64, fn func(now float64)) {
	s.seq++
	heap.Push(&s.h, event{t: t, seq: s.seq, fn: fn})
}

// serveAt schedules a service request arriving at srv at time t; cont runs
// at the service completion time.
func (s *sim) serveAt(srv *server, t, svc float64, cont func(done float64)) {
	s.at(t, func(now float64) {
		done := srv.serve(now, svc)
		s.at(done, func(now float64) { cont(now) })
	})
}

// forkServe issues one service request per target server at time t and
// calls cont when the last completion (plus perLegTail) arrives.
func (s *sim) forkServe(targets []*server, t, svc, perLegTail float64, cont func(join float64)) {
	remaining := len(targets)
	join := t
	for _, srv := range targets {
		s.serveAt(srv, t, svc, func(done float64) {
			done += perLegTail
			if done > join {
				join = done
			}
			remaining--
			if remaining == 0 {
				cont(join)
			}
		})
	}
}

// Run executes the simulation.
func Run(p Params) Result {
	if p.DataNodes < 1 {
		panic("perfsim: DataNodes must be >= 1")
	}
	if p.MultiShardFanout < 2 {
		p.MultiShardFanout = 2
	}
	if p.MultiShardFanout > p.DataNodes {
		p.MultiShardFanout = p.DataNodes
	}
	rng := rand.New(rand.NewSource(p.Seed))

	gtm := &server{}
	dns := make([]*server, p.DataNodes)
	for i := range dns {
		dns[i] = &server{}
	}

	var completed int64
	var latencySum float64
	latencies := make([]float64, 0, 1<<16)

	s := &sim{}
	var startTxn func(t float64)
	finish := func(start float64) func(done float64) {
		return func(done float64) {
			if done < p.Duration {
				completed++
				lat := done - start
				latencySum += lat
				latencies = append(latencies, lat)
				startTxn(done)
			}
		}
	}

	startTxn = func(t float64) {
		if t >= p.Duration {
			return
		}
		if rng.Float64() < p.SingleShardFraction {
			simSingleShard(s, p, rng, gtm, dns, t, finish(t))
		} else {
			simMultiShard(s, p, rng, gtm, dns, t, finish(t))
		}
	}

	nClients := p.ClientsPerDN * p.DataNodes
	for c := 0; c < nClients; c++ {
		// Stagger starts a little to avoid a thundering herd at t=0.
		startTxn(float64(c) * p.NetHop / float64(nClients+1))
	}

	for s.h.Len() > 0 {
		ev := heap.Pop(&s.h).(event)
		ev.fn(ev.t)
	}

	res := Result{
		Params:      p,
		Completed:   completed,
		Throughput:  float64(completed) / p.Duration,
		GTMRequests: gtm.count,
	}
	if completed > 0 {
		res.AvgLatency = latencySum / float64(completed)
		sort.Float64s(latencies)
		res.P95Latency = latencies[int(float64(len(latencies))*0.95)]
	}
	// Requests admitted just before the horizon may finish past it; clamp
	// so utilization stays a fraction of the measured window.
	res.GTMUtilization = clamp01(gtm.busy / p.Duration)
	var dnBusy float64
	for _, dn := range dns {
		dnBusy += dn.busy
	}
	res.DNUtilization = clamp01(dnBusy / (p.Duration * float64(p.DataNodes)))
	return res
}

func clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// simSingleShard schedules one single-shard transaction path.
func simSingleShard(s *sim, p Params, rng *rand.Rand, gtm *server, dns []*server, t float64, done func(float64)) {
	shard := rng.Intn(len(dns))
	t += p.NetHop + p.CNService // client -> CN, CN work

	runDN := func(t float64, after func(float64)) {
		s.serveAt(dns[shard], t+p.NetHop, p.DNWork, func(d float64) { after(d + p.NetHop) })
	}

	if p.Mode == GTMLite {
		// The fast path: no GTM at all.
		runDN(t, func(d float64) { done(d + p.NetHop) })
		return
	}
	// Baseline: GXID + snapshot(s) from the GTM, then work, then dequeue.
	gtmOps := 1 + p.BaselineExtraGTMOps
	var chainGTM func(t float64, n int, after func(float64))
	chainGTM = func(t float64, n int, after func(float64)) {
		if n == 0 {
			after(t)
			return
		}
		s.serveAt(gtm, t+p.NetHop, p.GTMService, func(d float64) {
			chainGTM(d+p.NetHop, n-1, after)
		})
	}
	chainGTM(t, gtmOps, func(t float64) {
		runDN(t, func(t float64) {
			// Dequeue from the GTM active list.
			s.serveAt(gtm, t+p.NetHop, p.GTMService, func(d float64) {
				done(d + p.NetHop + p.NetHop)
			})
		})
	})
}

// simMultiShard schedules one multi-shard transaction path with 2PC.
func simMultiShard(s *sim, p Params, rng *rand.Rand, gtm *server, dns []*server, t float64, done func(float64)) {
	k := p.MultiShardFanout
	first := rng.Intn(len(dns))
	targets := make([]*server, k)
	for i := range targets {
		targets[i] = dns[(first+i)%len(dns)]
	}
	t += p.NetHop + p.CNService

	gtmOps := 1 // GXID + global snapshot
	if p.Mode == Baseline {
		gtmOps += p.BaselineExtraGTMOps
	}
	var chainGTM func(t float64, n int, after func(float64))
	chainGTM = func(t float64, n int, after func(float64)) {
		if n == 0 {
			after(t)
			return
		}
		s.serveAt(gtm, t+p.NetHop, p.GTMService, func(d float64) {
			chainGTM(d+p.NetHop, n-1, after)
		})
	}

	chainGTM(t, gtmOps, func(t float64) {
		// Parallel work legs.
		s.forkServe(targets, t+p.NetHop, p.DNWork, p.NetHop, func(join float64) {
			// 2PC prepare round.
			s.forkServe(targets, join+p.NetHop, p.PrepareCost, p.NetHop, func(join float64) {
				// Commit at GTM first (the paper's ordering), then the
				// commit confirmation round.
				s.serveAt(gtm, join+p.NetHop, p.GTMService, func(d float64) {
					s.forkServe(targets, d+p.NetHop, p.CommitCost, p.NetHop, func(join float64) {
						done(join + p.NetHop)
					})
				})
			})
		})
	})
}
