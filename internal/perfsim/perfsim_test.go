package perfsim

import (
	"fmt"
	"testing"
)

func run(t *testing.T, dn int, mode Mode, ss float64) Result {
	t.Helper()
	p := DefaultParams(dn, mode, ss)
	p.Duration = 2.0
	return Run(p)
}

func TestDeterminism(t *testing.T) {
	a := run(t, 4, GTMLite, 0.9)
	b := run(t, 4, GTMLite, 0.9)
	if a.Throughput != b.Throughput || a.Completed != b.Completed {
		t.Errorf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestGTMLiteSSAvoidsGTMEntirely(t *testing.T) {
	r := run(t, 4, GTMLite, 1.0)
	if r.GTMRequests != 0 {
		t.Errorf("100%% single-shard GTM-lite made %d GTM requests", r.GTMRequests)
	}
	if r.GTMUtilization != 0 {
		t.Errorf("gtm util = %f", r.GTMUtilization)
	}
}

func TestBaselineHitsGTMForEverything(t *testing.T) {
	r := run(t, 4, Baseline, 1.0)
	// begin + extra snapshot + end = 3 requests per txn.
	if r.GTMRequests < 3*r.Completed {
		t.Errorf("gtm requests = %d for %d txns", r.GTMRequests, r.Completed)
	}
}

// TestFig3Shape checks the paper's qualitative result: GTM-lite outperforms
// baseline and scales out much better, with the largest gap on the 100 %
// single-shard workload.
func TestFig3Shape(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	thr := func(mode Mode, ss float64) []float64 {
		out := make([]float64, len(sizes))
		for i, n := range sizes {
			out[i] = run(t, n, mode, ss).Throughput
		}
		return out
	}
	liteSS := thr(GTMLite, 1.0)
	baseSS := thr(Baseline, 1.0)
	liteMS := thr(GTMLite, 0.9)
	baseMS := thr(Baseline, 0.9)

	// GTM-lite wins at every size.
	for i := range sizes {
		if liteSS[i] <= baseSS[i] {
			t.Errorf("SS @%d nodes: lite %.0f <= baseline %.0f", sizes[i], liteSS[i], baseSS[i])
		}
		if liteMS[i] <= baseMS[i] {
			t.Errorf("MS @%d nodes: lite %.0f <= baseline %.0f", sizes[i], liteMS[i], baseMS[i])
		}
	}
	// GTM-lite SS scales nearly linearly 1 -> 8.
	if speedup := liteSS[3] / liteSS[0]; speedup < 6 {
		t.Errorf("gtm-lite SS speedup 1->8 nodes = %.1fx, want >= 6x", speedup)
	}
	// Baseline flattens: its 4 -> 8 node gain is small.
	if gain := baseSS[3] / baseSS[2]; gain > 1.3 {
		t.Errorf("baseline SS gained %.2fx from 4->8 nodes; GTM should bottleneck it", gain)
	}
	// The baseline GTM saturates at 8 nodes.
	if util := run(t, 8, Baseline, 1.0).GTMUtilization; util < 0.9 {
		t.Errorf("baseline GTM utilization at 8 nodes = %.2f, want near 1.0", util)
	}
	// SS beats MS for GTM-lite ("performed better in 100% single-shard
	// workload because there is no centralized coordination").
	for i := range sizes {
		if liteSS[i] <= liteMS[i] {
			t.Errorf("@%d nodes: lite SS %.0f <= lite MS %.0f", sizes[i], liteSS[i], liteMS[i])
		}
	}
}

func TestLatencyStatsSane(t *testing.T) {
	r := run(t, 2, GTMLite, 0.9)
	if r.AvgLatency <= 0 || r.P95Latency < r.AvgLatency {
		t.Errorf("latency stats broken: avg=%v p95=%v", r.AvgLatency, r.P95Latency)
	}
	// Closed loop with 32 clients: Little's law X = N / (R + Z), Z=0.
	n := float64(r.Params.ClientsPerDN * r.Params.DataNodes)
	littles := n / r.AvgLatency
	if ratio := r.Throughput / littles; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("Little's law violated: X=%.0f, N/R=%.0f", r.Throughput, littles)
	}
}

func TestFanoutClampedToCluster(t *testing.T) {
	p := DefaultParams(1, GTMLite, 0.5)
	p.Duration = 0.5
	p.MultiShardFanout = 8 // must clamp to 1 DN... (2 -> 1)
	r := Run(p)
	if r.Completed == 0 {
		t.Error("simulation with clamped fanout produced nothing")
	}
}

func TestUtilizationBounds(t *testing.T) {
	for _, mode := range []Mode{GTMLite, Baseline} {
		for _, ss := range []float64{1.0, 0.9, 0.5} {
			r := run(t, 4, mode, ss)
			if r.GTMUtilization < 0 || r.GTMUtilization > 1.0001 {
				t.Errorf("%v ss=%v: gtm util %f out of bounds", mode, ss, r.GTMUtilization)
			}
			if r.DNUtilization < 0 || r.DNUtilization > 1.0001 {
				t.Errorf("%v ss=%v: dn util %f out of bounds", mode, ss, r.DNUtilization)
			}
			if r.Throughput <= 0 {
				t.Errorf("%v ss=%v: zero throughput", mode, ss)
			}
		}
	}
}

func TestCrossShardFractionSweepMonotone(t *testing.T) {
	// As the multi-shard fraction grows, GTM-lite throughput must fall
	// (more coordination). Allow small simulation noise.
	prev := -1.0
	for _, ss := range []float64{1.0, 0.9, 0.7, 0.5, 0.3} {
		r := run(t, 4, GTMLite, ss)
		if prev > 0 && r.Throughput > prev*1.05 {
			t.Errorf("throughput rose when ss dropped to %.1f: %.0f -> %.0f", ss, prev, r.Throughput)
		}
		prev = r.Throughput
	}
}

func ExampleRun() {
	p := DefaultParams(4, GTMLite, 1.0)
	p.Duration = 1.0
	r := Run(p)
	fmt.Println(r.GTMRequests)
	// Output: 0
}
