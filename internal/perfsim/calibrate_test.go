package perfsim

import (
	"testing"

	"repro/internal/transport"
)

// TestCalibrateFromFabric feeds synthetic fabric counters through the
// calibration and checks both derivable knobs.
func TestCalibrateFromFabric(t *testing.T) {
	f := transport.New(transport.Config{})
	// 100 committed txns, 10 of them 2PC over 3 shards: the baseline paid 4
	// GTM messages per txn (2 beyond the modeled begin+end pair).
	for i := 0; i < 100; i++ {
		for j := 0; j < 4; j++ {
			if err := f.Send(transport.CN(), transport.GTM(), transport.GTMRound, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			if err := f.Send(transport.CN(), transport.DN(j), transport.Prepare, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	p := DefaultParams(4, Baseline, 0.9).CalibrateFromFabric(f.Stats(), 100, 10)
	if p.BaselineExtraGTMOps != 2 {
		t.Errorf("BaselineExtraGTMOps = %d, want 2", p.BaselineExtraGTMOps)
	}
	if p.MultiShardFanout != 3 {
		t.Errorf("MultiShardFanout = %d, want 3", p.MultiShardFanout)
	}

	// GTM-lite params never adopt the baseline overhead knob, and garbage
	// inputs leave the defaults alone.
	lite := DefaultParams(4, GTMLite, 1.0)
	if got := lite.CalibrateFromFabric(f.Stats(), 100, 10); got.BaselineExtraGTMOps != lite.BaselineExtraGTMOps {
		t.Errorf("gtm-lite calibration changed BaselineExtraGTMOps to %d", got.BaselineExtraGTMOps)
	}
	if got := DefaultParams(4, Baseline, 0.9).CalibrateFromFabric(transport.Stats{}, 0, 0); got != DefaultParams(4, Baseline, 0.9) {
		t.Error("zero-commit calibration mutated params")
	}
}
