// Package highdim implements the high-dimensional feature index the paper
// poses as an autonomous-vehicle data-management challenge (§IV-B3):
// AI-extracted feature vectors with "hundreds and even thousands of
// dimensions" indexed so that queries over the raw data answer in
// sub-second time, with support for incremental ingestion and full index
// (re)building as the dimension set evolves.
//
// Two search paths are provided:
//
//   - Exact: brute-force k-NN over all vectors (the correctness baseline).
//   - IVF (inverted file): vectors are partitioned into nlist clusters by
//     a k-means-style training pass; queries probe only the closest nprobe
//     clusters. Recall is tunable via nprobe and verified against the
//     exact path in tests.
package highdim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Vector is one feature vector. All vectors in an index share a dimension.
type Vector []float32

// L2Squared computes squared Euclidean distance.
func L2Squared(a, b Vector) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

// Result is one k-NN hit.
type Result struct {
	ID   int64
	Dist float64 // squared L2
}

// Index stores vectors with optional IVF acceleration.
type Index struct {
	dim int

	mu      sync.RWMutex
	ids     []int64
	vecs    []Vector
	byID    map[int64]int
	deleted map[int64]bool

	// IVF state (nil until Train).
	centroids []Vector
	lists     [][]int // centroid -> positions in vecs
}

// NewIndex creates an index for vectors of the given dimension.
func NewIndex(dim int) (*Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("highdim: dimension must be positive, got %d", dim)
	}
	return &Index{dim: dim, byID: map[int64]int{}, deleted: map[int64]bool{}}, nil
}

// Dim returns the vector dimension.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of live vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byID)
}

// Add inserts (or replaces) a vector. New vectors added after Train are
// assigned to their nearest centroid incrementally, so ingestion never
// stops for a rebuild.
func (ix *Index) Add(id int64, v Vector) error {
	if len(v) != ix.dim {
		return fmt.Errorf("highdim: vector has dimension %d, index wants %d", len(v), ix.dim)
	}
	cp := make(Vector, len(v))
	copy(cp, v)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if pos, exists := ix.byID[id]; exists {
		ix.deleted[id] = false
		ix.vecs[pos] = cp
		// Stale list entries for the old vector are filtered at query time
		// via byID position checks; a Rebuild compacts them.
		ix.assignLocked(pos)
		return nil
	}
	pos := len(ix.vecs)
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, cp)
	ix.byID[id] = pos
	ix.assignLocked(pos)
	return nil
}

// assignLocked appends position pos to its nearest centroid's list.
func (ix *Index) assignLocked(pos int) {
	if ix.centroids == nil {
		return
	}
	best, bestD := 0, math.Inf(1)
	for c, cent := range ix.centroids {
		if d := L2Squared(ix.vecs[pos], cent); d < bestD {
			best, bestD = c, d
		}
	}
	ix.lists[best] = append(ix.lists[best], pos)
}

// Remove deletes a vector by id.
func (ix *Index) Remove(id int64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.byID[id]; !ok {
		return false
	}
	delete(ix.byID, id)
	ix.deleted[id] = true
	return true
}

// Train builds the IVF structure with nlist clusters using iters rounds of
// Lloyd's algorithm over the current contents. Called once after bulk
// load; Rebuild re-trains after heavy churn (the paper's "high dimensional
// index (re)building").
func (ix *Index) Train(nlist, iters int, seed int64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	live := ix.livePositionsLocked()
	if nlist <= 0 || len(live) == 0 {
		return fmt.Errorf("highdim: cannot train with nlist=%d over %d vectors", nlist, len(live))
	}
	if nlist > len(live) {
		nlist = len(live)
	}
	rng := rand.New(rand.NewSource(seed))
	// Init: random distinct vectors as centroids.
	perm := rng.Perm(len(live))
	centroids := make([]Vector, nlist)
	for i := 0; i < nlist; i++ {
		src := ix.vecs[live[perm[i]]]
		centroids[i] = append(Vector(nil), src...)
	}
	assign := make([]int, len(live))
	for it := 0; it < iters; it++ {
		// Assignment step.
		for i, pos := range live {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := L2Squared(ix.vecs[pos], centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		// Update step.
		counts := make([]int, nlist)
		sums := make([][]float64, nlist)
		for c := range sums {
			sums[c] = make([]float64, ix.dim)
		}
		for i, pos := range live {
			c := assign[i]
			counts[c]++
			for d, x := range ix.vecs[pos] {
				sums[c][d] += float64(x)
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // empty cluster keeps its centroid
			}
			for d := 0; d < ix.dim; d++ {
				centroids[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
	}
	lists := make([][]int, nlist)
	for i, pos := range live {
		lists[assign[i]] = append(lists[assign[i]], pos)
	}
	ix.centroids = centroids
	ix.lists = lists
	return nil
}

// Rebuild compacts deleted/stale entries and re-trains the IVF lists with
// the same cluster count (no-op if the index was never trained).
func (ix *Index) Rebuild(iters int, seed int64) error {
	ix.mu.Lock()
	nlist := len(ix.centroids)
	// Compact storage.
	newIDs := make([]int64, 0, len(ix.byID))
	newVecs := make([]Vector, 0, len(ix.byID))
	newByID := make(map[int64]int, len(ix.byID))
	for id, pos := range ix.byID {
		newByID[id] = len(newIDs)
		newIDs = append(newIDs, id)
		newVecs = append(newVecs, ix.vecs[pos])
	}
	ix.ids, ix.vecs, ix.byID = newIDs, newVecs, newByID
	ix.deleted = map[int64]bool{}
	ix.centroids, ix.lists = nil, nil
	ix.mu.Unlock()
	if nlist == 0 {
		return nil
	}
	return ix.Train(nlist, iters, seed)
}

func (ix *Index) livePositionsLocked() []int {
	out := make([]int, 0, len(ix.byID))
	for id, pos := range ix.byID {
		if !ix.deleted[id] {
			out = append(out, pos)
		}
	}
	sort.Ints(out)
	return out
}

// SearchExact returns the k nearest vectors by brute force.
func (ix *Index) SearchExact(q Vector, k int) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("highdim: query has dimension %d, index wants %d", len(q), ix.dim)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	res := make([]Result, 0, len(ix.byID))
	for id, pos := range ix.byID {
		res = append(res, Result{ID: id, Dist: L2Squared(q, ix.vecs[pos])})
	}
	sortResults(res)
	if k < len(res) {
		res = res[:k]
	}
	return res, nil
}

// Search returns (approximately) the k nearest vectors. With a trained IVF
// it probes the nprobe nearest clusters; untrained indexes fall back to
// exact search.
func (ix *Index) Search(q Vector, k, nprobe int) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("highdim: query has dimension %d, index wants %d", len(q), ix.dim)
	}
	ix.mu.RLock()
	trained := ix.centroids != nil
	ix.mu.RUnlock()
	if !trained {
		return ix.SearchExact(q, k)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	// Rank centroids by distance.
	order := make([]Result, len(ix.centroids))
	for c, cent := range ix.centroids {
		order[c] = Result{ID: int64(c), Dist: L2Squared(q, cent)}
	}
	sortResults(order)

	var res []Result
	seen := map[int64]bool{}
	for p := 0; p < nprobe; p++ {
		for _, pos := range ix.lists[order[p].ID] {
			id := ix.ids[pos]
			// Skip stale entries (deleted or superseded by re-Add).
			if cur, ok := ix.byID[id]; !ok || cur != pos || seen[id] {
				continue
			}
			seen[id] = true
			res = append(res, Result{ID: id, Dist: L2Squared(q, ix.vecs[pos])})
		}
	}
	sortResults(res)
	if k < len(res) {
		res = res[:k]
	}
	return res, nil
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}

// Recall computes |approx ∩ exact| / |exact| for evaluation.
func Recall(approx, exact []Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := map[int64]bool{}
	for _, r := range approx {
		in[r.ID] = true
	}
	hit := 0
	for _, r := range exact {
		if in[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
