package highdim

import (
	"math/rand"
	"testing"
)

// randVec makes a vector near one of nClusters well-separated anchors so
// IVF clustering has real structure to find.
func randVec(rng *rand.Rand, dim, nClusters int) (Vector, int) {
	c := rng.Intn(nClusters)
	v := make(Vector, dim)
	for d := range v {
		v[d] = float32(c*10) + float32(rng.NormFloat64())
	}
	return v, c
}

func buildIndex(t testing.TB, n, dim, clusters int) *Index {
	ix, err := NewIndex(dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		v, _ := randVec(rng, dim, clusters)
		if err := ix.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestAddSearchExact(t *testing.T) {
	ix := buildIndex(t, 500, 32, 5)
	if ix.Len() != 500 {
		t.Fatalf("len = %d", ix.Len())
	}
	rng := rand.New(rand.NewSource(9))
	q, _ := randVec(rng, 32, 5)
	res, err := ix.SearchExact(q, 10)
	if err != nil || len(res) != 10 {
		t.Fatalf("res = %v, %v", res, err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestDimensionChecks(t *testing.T) {
	if _, err := NewIndex(0); err == nil {
		t.Error("zero dim must fail")
	}
	ix, _ := NewIndex(8)
	if err := ix.Add(1, make(Vector, 4)); err == nil {
		t.Error("wrong-dim add must fail")
	}
	if _, err := ix.SearchExact(make(Vector, 4), 1); err == nil {
		t.Error("wrong-dim query must fail")
	}
}

func TestIVFRecall(t *testing.T) {
	ix := buildIndex(t, 2000, 64, 8)
	if err := ix.Train(16, 5, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var totalRecall float64
	const queries = 20
	for i := 0; i < queries; i++ {
		q, _ := randVec(rng, 64, 8)
		exact, _ := ix.SearchExact(q, 10)
		approx, err := ix.Search(q, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		totalRecall += Recall(approx, exact)
	}
	if avg := totalRecall / queries; avg < 0.9 {
		t.Errorf("IVF recall@10 with nprobe=4 = %.2f, want >= 0.9", avg)
	}
	// nprobe = nlist degenerates to exact.
	q, _ := randVec(rng, 64, 8)
	exact, _ := ix.SearchExact(q, 10)
	all, _ := ix.Search(q, 10, 16)
	if Recall(all, exact) != 1 {
		t.Error("full probe must match exact search")
	}
}

func TestUntrainedFallsBackToExact(t *testing.T) {
	ix := buildIndex(t, 100, 16, 3)
	rng := rand.New(rand.NewSource(3))
	q, _ := randVec(rng, 16, 3)
	a, _ := ix.Search(q, 5, 2)
	e, _ := ix.SearchExact(q, 5)
	if Recall(a, e) != 1 {
		t.Error("untrained Search must equal exact")
	}
}

func TestIncrementalAddAfterTrain(t *testing.T) {
	ix := buildIndex(t, 500, 16, 4)
	if err := ix.Train(8, 4, 1); err != nil {
		t.Fatal(err)
	}
	// Ingest continues after training; new vectors must be findable.
	probe := make(Vector, 16)
	for d := range probe {
		probe[d] = 999
	}
	if err := ix.Add(777777, probe); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(probe, 1, 2)
	if err != nil || len(res) == 0 || res[0].ID != 777777 {
		t.Fatalf("incremental vector not found: %v, %v", res, err)
	}
}

func TestRemoveAndRebuild(t *testing.T) {
	ix := buildIndex(t, 300, 16, 3)
	if err := ix.Train(6, 4, 1); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if !ix.Remove(i) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if ix.Remove(0) {
		t.Error("double remove should be false")
	}
	if ix.Len() != 200 {
		t.Fatalf("len = %d", ix.Len())
	}
	// Deleted ids never surface.
	rng := rand.New(rand.NewSource(4))
	q, _ := randVec(rng, 16, 3)
	res, _ := ix.Search(q, 50, 6)
	for _, r := range res {
		if r.ID < 100 {
			t.Fatalf("deleted id %d surfaced", r.ID)
		}
	}
	// Rebuild compacts and retrains; results stay consistent with exact.
	if err := ix.Rebuild(4, 2); err != nil {
		t.Fatal(err)
	}
	exact, _ := ix.SearchExact(q, 10)
	approx, _ := ix.Search(q, 10, 6)
	if Recall(approx, exact) == 0 {
		t.Error("post-rebuild recall collapsed")
	}
}

func TestReAddReplacesVector(t *testing.T) {
	ix, _ := NewIndex(4)
	ix.Add(1, Vector{0, 0, 0, 0})
	ix.Add(1, Vector{10, 10, 10, 10})
	if ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
	res, _ := ix.SearchExact(Vector{10, 10, 10, 10}, 1)
	if res[0].Dist != 0 {
		t.Errorf("replacement lost: %v", res)
	}
}

func TestTrainErrors(t *testing.T) {
	ix, _ := NewIndex(4)
	if err := ix.Train(4, 3, 1); err == nil {
		t.Error("training an empty index must fail")
	}
	ix.Add(1, Vector{1, 2, 3, 4})
	if err := ix.Train(16, 3, 1); err != nil {
		t.Errorf("nlist larger than data should clamp: %v", err)
	}
}

func BenchmarkIVFSearch(b *testing.B) {
	ix := buildIndex(b, 5000, 64, 8)
	ix.Train(32, 5, 1)
	rng := rand.New(rand.NewSource(5))
	q, _ := randVec(rng, 64, 8)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.SearchExact(q, 10)
		}
	})
	b.Run("ivf-nprobe4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Search(q, 10, 4)
		}
	})
}
