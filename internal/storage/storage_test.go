package storage

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/txnkit"
	"repro/internal/types"
)

func newTestTable(t *testing.T, pk bool) (*Table, *txnkit.TxnManager) {
	t.Helper()
	txm := txnkit.NewTxnManager()
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindString},
	)
	var pkCols []int
	if pk {
		pkCols = []int{0}
	}
	return NewTable("t", schema, pkCols, txm), txm
}

// run executes f inside a committed transaction.
func run(txm *txnkit.TxnManager, f func(xid txnkit.XID, snap *txnkit.Snapshot) error) error {
	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	if err := f(xid, &snap); err != nil {
		txm.Abort(xid)
		return err
	}
	return txm.Commit(xid)
}

func insertRows(t *testing.T, tbl *Table, txm *txnkit.TxnManager, n int) {
	t.Helper()
	err := run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		for i := 0; i < n; i++ {
			if err := tbl.Insert(xid, snap, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func countVisible(tbl *Table, txm *txnkit.TxnManager) int {
	snap := txm.LocalSnapshot()
	return tbl.VisibleCount(0, &snap)
}

func TestInsertAndScan(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 10)
	if got := countVisible(tbl, txm); got != 10 {
		t.Errorf("visible = %d, want 10", got)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	tbl, txm := newTestTable(t, false)
	err := run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		return tbl.Insert(xid, snap, types.Row{types.NewString("oops"), types.NewString("v")})
	})
	if err == nil {
		t.Error("type mismatch must fail")
	}
	err = run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		return tbl.Insert(xid, snap, types.Row{types.NewInt(1)})
	})
	if err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 3)
	err := run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		return tbl.Insert(xid, snap, types.Row{types.NewInt(1), types.NewString("dup")})
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("err = %v, want ErrDuplicateKey", err)
	}
	// Same key within one transaction also conflicts.
	err = run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		if err := tbl.Insert(xid, snap, types.Row{types.NewInt(100), types.NewString("a")}); err != nil {
			return err
		}
		return tbl.Insert(xid, snap, types.Row{types.NewInt(100), types.NewString("b")})
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("err = %v, want ErrDuplicateKey", err)
	}
	// Deleting then reinserting the same key is allowed.
	err = run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		if _, err := tbl.Delete(xid, snap, func(r types.Row) bool { return r[0].Int() == 2 }); err != nil {
			return err
		}
		return tbl.Insert(xid, snap, types.Row{types.NewInt(2), types.NewString("reborn")})
	})
	if err != nil {
		t.Errorf("delete+reinsert should succeed: %v", err)
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 5)
	err := run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		n, err := tbl.Update(xid, snap,
			func(r types.Row) bool { return r[0].Int() == 3 },
			func(r types.Row) (types.Row, error) {
				r[1] = types.NewString("updated")
				return r, nil
			})
		if n != 1 {
			t.Errorf("updated %d rows, want 1", n)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := countVisible(tbl, txm); got != 5 {
		t.Errorf("visible = %d, want 5", got)
	}
	if tbl.VersionCount() != 6 {
		t.Errorf("versions = %d, want 6", tbl.VersionCount())
	}
	snap := txm.LocalSnapshot()
	found := false
	tbl.Scan(0, &snap, func(r types.Row) bool {
		if r[0].Int() == 3 {
			found = true
			if r[1].Str() != "updated" {
				t.Errorf("row 3 value = %q", r[1].Str())
			}
		}
		return true
	})
	if !found {
		t.Error("row 3 vanished")
	}
}

func TestDeleteHidesTuple(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 5)
	err := run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		n, err := tbl.Delete(xid, snap, func(r types.Row) bool { return r[0].Int()%2 == 0 })
		if n != 3 {
			t.Errorf("deleted %d, want 3", n)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := countVisible(tbl, txm); got != 2 {
		t.Errorf("visible = %d, want 2", got)
	}
}

func TestAbortRollsBackEverything(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 3)
	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	tbl.Insert(xid, &snap, types.Row{types.NewInt(99), types.NewString("ghost")})
	tbl.Delete(xid, &snap, func(r types.Row) bool { return r[0].Int() == 0 })
	tbl.Update(xid, &snap, func(r types.Row) bool { return r[0].Int() == 1 },
		func(r types.Row) (types.Row, error) { r[1] = types.NewString("ghost2"); return r, nil })
	txm.Abort(xid)

	if got := countVisible(tbl, txm); got != 3 {
		t.Errorf("visible after abort = %d, want 3", got)
	}
	s := txm.LocalSnapshot()
	tbl.Scan(0, &s, func(r types.Row) bool {
		if v := r[1].Str(); v == "ghost" || v == "ghost2" {
			t.Errorf("aborted write %q is visible", v)
		}
		return true
	})
}

func TestWriteWriteConflict(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 1)

	t1 := txm.Begin()
	s1 := txm.LocalSnapshot()
	t2 := txm.Begin()
	s2 := txm.LocalSnapshot()

	if _, err := tbl.Delete(t1, &s1, nil); err != nil {
		t.Fatal(err)
	}
	_, err := tbl.Delete(t2, &s2, nil)
	if !errors.Is(err, ErrWriteConflict) {
		t.Errorf("err = %v, want ErrWriteConflict", err)
	}
	// After t1 aborts, t2 can take over.
	txm.Abort(t1)
	if _, err := tbl.Delete(t2, &s2, nil); err != nil {
		t.Errorf("takeover after abort failed: %v", err)
	}
	txm.Commit(t2)
}

func TestLookupEqUsesIndexAndFallback(t *testing.T) {
	tbl, txm := newTestTable(t, true) // pk index on col 0
	insertRows(t, tbl, txm, 100)
	snap := txm.LocalSnapshot()

	n := 0
	tbl.LookupEq(0, &snap, 0, types.NewInt(42), func(r types.Row) bool { n++; return true })
	if n != 1 {
		t.Errorf("indexed lookup found %d rows", n)
	}
	// Column 1 has no index: fallback full scan.
	n = 0
	tbl.LookupEq(0, &snap, 1, types.NewString("v7"), func(r types.Row) bool { n++; return true })
	if n != 1 {
		t.Errorf("fallback lookup found %d rows", n)
	}
}

func TestCreateIndexBackfills(t *testing.T) {
	tbl, txm := newTestTable(t, false)
	insertRows(t, tbl, txm, 50)
	tbl.CreateIndex(1)
	snap := txm.LocalSnapshot()
	n := 0
	tbl.LookupEq(0, &snap, 1, types.NewString("v9"), func(r types.Row) bool { n++; return true })
	if n != 1 {
		t.Errorf("found %d rows via backfilled index", n)
	}
}

func TestVacuumReclaimsDeadVersions(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 10)
	// Delete half, update two.
	err := run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
		_, err := tbl.Delete(xid, snap, func(r types.Row) bool { return r[0].Int() < 5 })
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Aborted insert adds a dead version too.
	xid := txm.Begin()
	snap := txm.LocalSnapshot()
	tbl.Insert(xid, &snap, types.Row{types.NewInt(777), types.NewString("x")})
	txm.Abort(xid)

	before := tbl.VersionCount()
	horizon := txm.LocalSnapshot().Xmax
	removed := tbl.Vacuum(horizon)
	if removed != 6 { // 5 deleted + 1 aborted
		t.Errorf("vacuum removed %d, want 6", removed)
	}
	if tbl.VersionCount() != before-6 {
		t.Errorf("version count after vacuum = %d", tbl.VersionCount())
	}
	if got := countVisible(tbl, txm); got != 5 {
		t.Errorf("visible after vacuum = %d, want 5", got)
	}
	// Index still works after rebuild.
	s := txm.LocalSnapshot()
	n := 0
	tbl.LookupEq(0, &s, 0, types.NewInt(7), func(r types.Row) bool { n++; return true })
	if n != 1 {
		t.Errorf("index lookup after vacuum found %d", n)
	}
}

func TestSnapshotScanStability(t *testing.T) {
	tbl, txm := newTestTable(t, true)
	insertRows(t, tbl, txm, 5)
	oldSnap := txm.LocalSnapshot()
	insertRows2 := func(base int) {
		run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
			return tbl.Insert(xid, snap, types.Row{types.NewInt(int64(base)), types.NewString("late")})
		})
	}
	insertRows2(100)
	insertRows2(101)
	if got := tbl.VisibleCount(0, &oldSnap); got != 5 {
		t.Errorf("old snapshot sees %d rows, want 5", got)
	}
	if got := countVisible(tbl, txm); got != 7 {
		t.Errorf("new snapshot sees %d rows, want 7", got)
	}
}

// Property: after any sequence of committed inserts and deletes, the number
// of visible rows equals inserts minus deletes of distinct keys.
func TestVisibleCountProperty(t *testing.T) {
	f := func(ops []bool) bool {
		tbl, txm := newTestTable(t, false)
		live := 0
		key := 0
		for _, ins := range ops {
			if ins || live == 0 {
				k := key
				key++
				run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
					return tbl.Insert(xid, snap, types.Row{types.NewInt(int64(k)), types.NewString("p")})
				})
				live++
			} else {
				// Delete exactly one visible row (the smallest id).
				run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
					deleted := false
					_, err := tbl.Delete(xid, snap, func(r types.Row) bool {
						if deleted {
							return false
						}
						deleted = true
						return true
					})
					return err
				})
				live--
			}
		}
		return countVisible(tbl, txm) == live
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tbl, txm := newTestTable(t, false)
	insertRows(t, tbl, txm, 100)
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 50; i++ {
				err = run(txm, func(xid txnkit.XID, snap *txnkit.Snapshot) error {
					return tbl.Insert(xid, snap, types.Row{types.NewInt(int64(1000 + w*50 + i)), types.NewString("c")})
				})
				if err != nil {
					break
				}
			}
			done <- err
		}(w)
	}
	for r := 0; r < 4; r++ {
		go func() {
			for i := 0; i < 50; i++ {
				snap := txm.LocalSnapshot()
				n := tbl.VisibleCount(0, &snap)
				if n < 100 {
					done <- fmt.Errorf("reader saw %d rows, want >= 100", n)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := countVisible(tbl, txm); got != 300 {
		t.Errorf("final visible = %d, want 300", got)
	}
}
