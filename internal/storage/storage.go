// Package storage implements the per-data-node row storage engine of the
// FI-MPPDB reproduction: an MVCC heap with PostgreSQL-style (xmin, xmax)
// tuple stamping, hash indexes, predicate scans and vacuum.
//
// Visibility is delegated to internal/txnkit so the same heap works under
// purely local snapshots (GTM-lite single-shard fast path) and merged
// snapshots (multi-shard transactions).
package storage

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/txnkit"
	"repro/internal/types"
)

// ErrWriteConflict is returned when a transaction tries to update or delete
// a tuple version already deleted by a concurrent (still unsettled)
// transaction. FI-MPPDB aborts and retries in this case (first-updater
// wins).
var ErrWriteConflict = errors.New("storage: write-write conflict")

// ErrDuplicateKey is returned on primary-key violations.
var ErrDuplicateKey = errors.New("storage: duplicate primary key")

// Tuple is one heap version.
type Tuple struct {
	Xmin txnkit.XID
	Xmax txnkit.XID
	Row  types.Row
}

// Table is an MVCC heap for one table partition on one data node.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema *types.Schema
	heap   []Tuple
	// indexes maps column position -> hash index (datum hash -> heap slots).
	// Index entries are never removed on update/delete; visibility filtering
	// happens at scan time and Vacuum rebuilds the index.
	indexes map[int]map[uint64][]int
	// pkCols are the primary-key column positions; empty means no PK.
	pkCols []int
	txm    *txnkit.TxnManager
}

// NewTable creates an empty heap bound to the node's transaction manager.
// pkCols may be nil.
func NewTable(name string, schema *types.Schema, pkCols []int, txm *txnkit.TxnManager) *Table {
	t := &Table{
		name:    name,
		schema:  schema,
		indexes: make(map[int]map[uint64][]int),
		pkCols:  pkCols,
		txm:     txm,
	}
	for _, c := range pkCols {
		t.indexes[c] = make(map[uint64][]int)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// CreateIndex adds a hash index on the column at position col, backfilling
// existing heap entries.
func (t *Table) CreateIndex(col int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return
	}
	idx := make(map[uint64][]int)
	for slot, tp := range t.heap {
		h := types.Hash(tp.Row[col])
		idx[h] = append(idx[h], slot)
	}
	t.indexes[col] = idx
}

// Insert appends a new tuple version owned by xid. The snapshot is used for
// primary-key uniqueness checking.
func (t *Table) Insert(xid txnkit.XID, snap *txnkit.Snapshot, row types.Row) error {
	row, err := t.schema.CheckRow(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.pkCols) > 0 {
		if t.pkExistsLocked(xid, snap, row) {
			return fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.name, pkOf(row, t.pkCols))
		}
	}
	t.appendLocked(Tuple{Xmin: xid, Row: row})
	return nil
}

func pkOf(row types.Row, pkCols []int) types.Row {
	out := make(types.Row, len(pkCols))
	for i, c := range pkCols {
		out[i] = row[c]
	}
	return out
}

// pkExistsLocked checks whether a visible (or own-uncommitted) tuple with
// the same primary key exists.
func (t *Table) pkExistsLocked(xid txnkit.XID, snap *txnkit.Snapshot, row types.Row) bool {
	c0 := t.pkCols[0]
	slots := t.indexes[c0][types.Hash(row[c0])]
	for _, s := range slots {
		tp := &t.heap[s]
		if !t.sameKey(tp.Row, row) {
			continue
		}
		// Visible to us, or inserted by us and not yet deleted by us.
		if t.txm.TupleVisible(snap, xid, tp.Xmin, tp.Xmax) {
			return true
		}
	}
	return false
}

func (t *Table) sameKey(a, b types.Row) bool {
	for _, c := range t.pkCols {
		if !types.Equal(a[c], b[c]) {
			return false
		}
	}
	return true
}

func (t *Table) appendLocked(tp Tuple) {
	slot := len(t.heap)
	t.heap = append(t.heap, tp)
	for col, idx := range t.indexes {
		h := types.Hash(tp.Row[col])
		idx[h] = append(idx[h], slot)
	}
}

// Scan calls fn for every tuple version visible to (xid, snap). fn must not
// retain the row. Returning false stops the scan.
func (t *Table) Scan(xid txnkit.XID, snap *txnkit.Snapshot, fn func(row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := range t.heap {
		tp := &t.heap[i]
		if t.txm.TupleVisible(snap, xid, tp.Xmin, tp.Xmax) {
			if !fn(tp.Row) {
				return
			}
		}
	}
}

// LookupEq scans only tuples whose indexed column col equals key, using the
// hash index when present and falling back to a full scan otherwise.
func (t *Table) LookupEq(xid txnkit.XID, snap *txnkit.Snapshot, col int, key types.Datum, fn func(row types.Row) bool) {
	t.mu.RLock()
	idx, ok := t.indexes[col]
	if !ok {
		t.mu.RUnlock()
		t.Scan(xid, snap, func(row types.Row) bool {
			if types.Equal(row[col], key) {
				return fn(row)
			}
			return true
		})
		return
	}
	defer t.mu.RUnlock()
	for _, s := range idx[types.Hash(key)] {
		tp := &t.heap[s]
		if !types.Equal(tp.Row[col], key) {
			continue // hash collision
		}
		if t.txm.TupleVisible(snap, xid, tp.Xmin, tp.Xmax) {
			if !fn(tp.Row) {
				return
			}
		}
	}
}

// Update rewrites every visible tuple matching pred: the old version gets
// xmax=xid, a new version with set(row) applied is appended. It returns the
// number of updated tuples.
func (t *Table) Update(xid txnkit.XID, snap *txnkit.Snapshot, pred func(types.Row) bool, set func(types.Row) (types.Row, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	// Collect first: appending while iterating would rescan new versions.
	var victims []int
	for i := range t.heap {
		tp := &t.heap[i]
		if !t.txm.TupleVisible(snap, xid, tp.Xmin, tp.Xmax) {
			continue
		}
		if pred != nil && !pred(tp.Row) {
			continue
		}
		victims = append(victims, i)
	}
	for _, i := range victims {
		tp := &t.heap[i]
		if err := t.markDeletedLocked(tp, xid); err != nil {
			return n, err
		}
		newRow, err := set(tp.Row.Clone())
		if err != nil {
			return n, err
		}
		newRow, err = t.schema.CheckRow(newRow)
		if err != nil {
			return n, err
		}
		t.appendLocked(Tuple{Xmin: xid, Row: newRow})
		n++
	}
	return n, nil
}

// Delete stamps xmax=xid on every visible tuple matching pred and returns
// the count.
func (t *Table) Delete(xid txnkit.XID, snap *txnkit.Snapshot, pred func(types.Row) bool) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.heap {
		tp := &t.heap[i]
		if !t.txm.TupleVisible(snap, xid, tp.Xmin, tp.Xmax) {
			continue
		}
		if pred != nil && !pred(tp.Row) {
			continue
		}
		if err := t.markDeletedLocked(tp, xid); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// markDeletedLocked sets xmax, enforcing first-updater-wins: if another
// transaction already stamped xmax and has not aborted, that is a conflict.
func (t *Table) markDeletedLocked(tp *Tuple, xid txnkit.XID) error {
	if tp.Xmax != 0 && tp.Xmax != xid {
		switch t.txm.Status(tp.Xmax) {
		case txnkit.StatusAborted:
			// Previous deleter rolled back; we may take over the slot.
		default:
			return fmt.Errorf("%w: table %s tuple held by txn %d", ErrWriteConflict, t.name, tp.Xmax)
		}
	}
	tp.Xmax = xid
	return nil
}

// Vacuum removes versions that can never become visible again: inserted by
// an aborted txn, or deleted by a txn committed before horizon. It rebuilds
// the indexes and returns the number of versions reclaimed.
func (t *Table) Vacuum(horizon txnkit.XID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.heap[:0]
	removed := 0
	for _, tp := range t.heap {
		dead := false
		if t.txm.Status(tp.Xmin) == txnkit.StatusAborted {
			dead = true
		}
		if tp.Xmax != 0 && tp.Xmax < horizon && t.txm.Status(tp.Xmax) == txnkit.StatusCommitted {
			dead = true
		}
		if dead {
			removed++
			continue
		}
		kept = append(kept, tp)
	}
	t.heap = kept
	for col := range t.indexes {
		idx := make(map[uint64][]int)
		for slot, tp := range t.heap {
			h := types.Hash(tp.Row[col])
			idx[h] = append(idx[h], slot)
		}
		t.indexes[col] = idx
	}
	return removed
}

// UnsettledCount counts heap versions matching pred (nil = all) whose xmin
// or xmax belongs to a transaction that is still active or prepared. The
// rebalancer drains a bucket by polling this to zero: a complete snapshot
// of the bucket exists only once no stamp can still flip.
func (t *Table) UnsettledCount(pred func(types.Row) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	unsettled := func(x txnkit.XID) bool {
		if x == 0 {
			return false
		}
		st := t.txm.Status(x)
		return st == txnkit.StatusActive || st == txnkit.StatusPrepared
	}
	n := 0
	for i := range t.heap {
		tp := &t.heap[i]
		if pred != nil && !pred(tp.Row) {
			continue
		}
		if unsettled(tp.Xmin) || unsettled(tp.Xmax) {
			n++
		}
	}
	return n
}

// Reap physically removes every heap version matching pred, regardless of
// visibility, and rebuilds the indexes. It is the rebalancer's cleanup after
// a bucket cutover (retired source rows) or an aborted move (half-copied
// target rows): at those points the routing map guarantees no snapshot can
// reach the rows. It returns the number of versions removed.
func (t *Table) Reap(pred func(types.Row) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.heap[:0]
	removed := 0
	for _, tp := range t.heap {
		if pred(tp.Row) {
			removed++
			continue
		}
		kept = append(kept, tp)
	}
	if removed == 0 {
		return 0
	}
	t.heap = kept
	for col := range t.indexes {
		idx := make(map[uint64][]int)
		for slot, tp := range t.heap {
			h := types.Hash(tp.Row[col])
			idx[h] = append(idx[h], slot)
		}
		t.indexes[col] = idx
	}
	return removed
}

// VersionCount reports the raw number of heap versions (visible or not).
func (t *Table) VersionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.heap)
}

// VisibleCount counts tuples visible to (xid, snap); convenience for tests
// and statistics collection.
func (t *Table) VisibleCount(xid txnkit.XID, snap *txnkit.Snapshot) int {
	n := 0
	t.Scan(xid, snap, func(types.Row) bool { n++; return true })
	return n
}
