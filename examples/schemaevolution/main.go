// GMDB online schema evolution example (paper §III-B): MME applications at
// schema versions V3..V8 share one stored copy of each session. Writers and
// readers at different versions co-exist with zero downtime — the In
// Service Software Upgrade the paper describes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gmdb"
	"repro/internal/gmdb/schema"
	"repro/internal/mme"
)

func main() {
	reg := schema.NewRegistry()
	if err := mme.RegisterAll(reg); err != nil {
		log.Fatal(err)
	}
	store := gmdb.NewStore(reg, gmdb.Config{Partitions: 2})
	defer store.Close()

	// An old MME application (V3) creates sessions.
	v3, err := store.NewClient(mme.SessionType, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer v3.Close()
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < 5; i++ {
		obj, err := mme.GenerateSession(rng, 3, i)
		if err != nil {
			log.Fatal(err)
		}
		if err := v3.Put(fmt.Sprintf("sess-%d", i), obj); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("V3 application wrote 5 sessions")

	// A newly upgraded application (V5) reads the same sessions — objects
	// upgrade on the fly, new fields appear with their defaults.
	v5, err := store.NewClient(mme.SessionType, 5)
	if err != nil {
		log.Fatal(err)
	}
	defer v5.Close()
	sc5, _ := reg.Get(mme.SessionType, 5)
	obj, err := v5.Get("sess-0")
	if err != nil {
		log.Fatal(err)
	}
	fi := sc5.Root.FieldIndex("features")
	fmt.Printf("V5 reader sees sess-0 at v%d; new field 'features' = %q (default)\n",
		obj.Version, obj.Root.Values[fi].Scalar.Str())

	// The V5 app updates the session with a delta; the stored copy adopts
	// V5. The V3 app keeps working: reads downgrade on the fly.
	d, err := mme.SessionDelta(rng, 5, "460000000000000", 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := v5.ApplyDelta("sess-0", d); err != nil {
		log.Fatal(err)
	}
	back, err := store.Get("sess-0", 3)
	if err != nil {
		log.Fatal(err)
	}
	sc3, _ := reg.Get(mme.SessionType, 3)
	si := sc3.Root.FieldIndex("state")
	fmt.Printf("V3 reader still works after the V5 delta: state = %q (downgrade evolution)\n",
		back.Root.Values[si].Scalar.Str())

	// Walk the whole chain: a V8 reader upgrades V3-era data through
	// V3→V5→V6→V7→V8 stepwise.
	v8obj, err := store.Get("sess-1", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V8 reader upgraded sess-1 multi-hop to v%d\n", v8obj.Version)

	// Fig 8's rule: only adjacent direct conversions are defined.
	if _, err := reg.Conversion(mme.SessionType, 3, 8); err != nil {
		fmt.Printf("direct V3->V8 conversion correctly rejected: %v\n", err)
	}

	st := store.Stats()
	fmt.Printf("\nstore stats: %d puts, %d gets, %d deltas, %d schema conversions\n",
		st.Puts, st.Gets, st.Deltas, st.Conversions)
}
