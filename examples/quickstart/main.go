// Quickstart: open an embedded FI-MPPDB cluster, create a hash-distributed
// table, load rows, and run SQL — including EXPLAIN to see the optimizer's
// instrumented steps.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	db, err := core.Open(core.Options{DataNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.MustExec(`CREATE TABLE users (
		id      BIGINT,
		name    TEXT,
		country TEXT,
		credit  DOUBLE,
		PRIMARY KEY (id)
	) DISTRIBUTE BY HASH(id)`)

	names := []string{"ada", "grace", "edsger", "barbara", "donald", "tony"}
	countries := []string{"uk", "us", "nl", "us", "us", "uk"}
	for i, n := range names {
		db.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', '%s', %d.5)", i+1, n, countries[i], (i+1)*100))
	}

	res := db.MustExec(`SELECT country, count(*) AS n, avg(credit) AS avg_credit
	                    FROM users GROUP BY country ORDER BY n DESC`)
	fmt.Println("per-country aggregates:")
	for _, row := range res.Rows {
		fmt.Printf("  %-3s n=%v avg_credit=%v\n", row[0].Str(), row[1], row[2])
	}

	// Transactions: a cross-shard transfer uses GTM-lite's merged
	// snapshots + 2PC; watch the GTM traffic counter.
	before := db.GTMRequests()
	s := db.Session()
	for _, stmt := range []string{
		"BEGIN",
		"UPDATE users SET credit = credit - 50 WHERE id = 1",
		"UPDATE users SET credit = credit + 50 WHERE id = 2",
		"COMMIT",
	} {
		if _, err := s.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ncross-shard transfer done; GTM requests used: %d\n", db.GTMRequests()-before)

	before = db.GTMRequests()
	db.MustExec("UPDATE users SET credit = credit + 1 WHERE id = 3") // single-shard
	fmt.Printf("single-shard update;        GTM requests used: %d (GTM-lite fast path)\n", db.GTMRequests()-before)

	// EXPLAIN shows the logical steps the learning optimizer keys on.
	if err := db.Analyze("users"); err != nil {
		log.Fatal(err)
	}
	res = db.MustExec("EXPLAIN SELECT * FROM users WHERE credit > 300")
	fmt.Println("\nplan steps:")
	for _, row := range res.Rows {
		fmt.Printf("  %-55s est=%v\n", row[0].Str(), row[1])
	}
}
