// Device-edge-cloud sync example (paper §IV-B): phones, a watch and a home
// router share data through direct device-to-device sync. Updates converge
// with no loss and no duplication, subscriptions fire on matching keys,
// and the P2P mesh beats the via-cloud path on (simulated) latency.
package main

import (
	"fmt"

	"repro/internal/dsync"
)

func main() {
	phone := dsync.NewNode("phone", dsync.Device, nil)
	watch := dsync.NewNode("watch", dsync.Device, nil)
	tv := dsync.NewNode("tv", dsync.Device, nil)
	router := dsync.NewNode("router", dsync.Edge, nil)

	// The TV wants to know about media handoffs (query-based subscription).
	events := tv.Subscribe(dsync.PrefixPred("media/"), 16)

	phone.Put("media/now_playing", []byte("documentary.mp4@00:14:05"))
	phone.Put("photos/1", []byte("<jpeg bytes>"))
	watch.Put("health/heart_rate", []byte("62"))

	// Ad-hoc sync over direct radio: phone<->router, watch<->router,
	// tv<->router (leader-star around the home router).
	direct, internet := dsync.DefaultLinks()
	res := dsync.Converge([]*dsync.Node{phone, watch, tv}, router, dsync.LeaderStar, direct, 0)
	fmt.Printf("home mesh converged in %d rounds, %d messages, %v simulated time\n",
		res.Rounds, res.Messages, res.SimTime)

	if v, ok := tv.Get("media/now_playing"); ok {
		fmt.Printf("tv can resume playback: %s\n", v)
	}
	select {
	case e := <-events:
		fmt.Printf("tv subscription fired: %s -> %s (remote=%v)\n", e.Entry.Key, e.Entry.Value, e.Remote)
	default:
		fmt.Println("no event delivered (unexpected)")
	}

	// Compare with the conventional MBaaS route through the cloud.
	p2, w2, t2 := dsync.NewNode("phone", dsync.Device, nil), dsync.NewNode("watch", dsync.Device, nil), dsync.NewNode("tv", dsync.Device, nil)
	p2.Put("media/now_playing", []byte("documentary.mp4@00:14:05"))
	cloud := dsync.NewNode("cloud", dsync.Cloud, nil)
	cres := dsync.Converge([]*dsync.Node{p2, w2, t2}, cloud, dsync.ViaCloud, internet, 0)
	fmt.Printf("\nvia-cloud converged in %v simulated time (direct radio was %v — the paper's ~10x)\n",
		cres.SimTime, res.SimTime)

	// Conflict: phone and watch both update the same key while offline;
	// last writer wins deterministically after the next sync.
	phone.Put("settings/volume", []byte("40"))
	watch.Put("settings/volume", []byte("65"))
	dsync.SyncPair(phone, watch, direct)
	pv, _ := phone.Get("settings/volume")
	wv, _ := watch.Get("settings/volume")
	fmt.Printf("\nconflict resolved identically on both: phone=%s watch=%s\n", pv, wv)
}
