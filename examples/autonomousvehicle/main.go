// Autonomous-vehicle data management (paper §IV-B3): the three challenges
// the paper poses, exercised end to end on the reproduction's substrates.
//
//  1. Massive amount of data -> time-series pre-aggregation at the edge
//     (continuous rollups) and hot/cold separation (retention expiry).
//  2. High-dimensional data management -> AI feature vectors indexed for
//     sub-second nearest-scene queries, with incremental ingestion and
//     index rebuilding.
//  3. Spatial queries over the fleet -> grid-indexed positions.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/highdim"
	"repro/internal/spatial"
	"repro/internal/tseries"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	now := time.Now().UTC()

	// ------ 1. Sensor firehose with edge pre-aggregation ---------------
	ts := tseries.NewStore()
	// Continuous rollup maintained incrementally while ingesting — the
	// paper's "perform data pre-aggregation for time series data at
	// devices and edges".
	if err := ts.EnableRollup("lidar_points", time.Minute); err != nil {
		log.Fatal(err)
	}
	const samples = 8 * 3600 // one sample per second for 8 hours
	for i := 0; i < samples; i++ {
		at := now.Add(-time.Duration(samples-i) * time.Second)
		ts.Append("lidar_points", at, 90000+float64(rng.Intn(20000)), nil)
	}
	fmt.Printf("ingested %d lidar samples\n", ts.Len("lidar_points"))

	// Dashboards read the pre-aggregated rollup, not the raw points.
	buckets := ts.Window("lidar_points", now.Add(-10*time.Minute), now, time.Minute, nil)
	fmt.Printf("last 10 minutes (1-min rollups, served pre-aggregated):\n")
	for _, b := range buckets[:3] {
		fmt.Printf("  %s  avg=%.0f pts/s  max=%.0f\n", b.Start.Format("15:04"), b.Value(tseries.AggAvg), b.Max)
	}

	// Hot/cold separation: expire raw data older than 1 hour (in
	// production it would move to cloud cold storage first).
	removed := ts.Expire("lidar_points", now.Add(-time.Hour))
	fmt.Printf("cold-tiered %d raw samples; %d remain hot\n\n", removed, ts.Len("lidar_points"))

	// ------ 2. High-dimensional scene features -------------------------
	const dim = 128
	ix, err := highdim.NewIndex(dim)
	if err != nil {
		log.Fatal(err)
	}
	// "AI algorithms extract many properties from the raw data": simulate
	// feature vectors for 5 scene classes (rain, night, highway, ...).
	classes := []string{"rain", "night", "highway", "urban", "tunnel"}
	vecOf := func(class int) highdim.Vector {
		v := make(highdim.Vector, dim)
		for d := range v {
			v[d] = float32(class*10) + float32(rng.NormFloat64())
		}
		return v
	}
	frameClass := make(map[int64]int)
	for id := int64(0); id < 3000; id++ {
		c := rng.Intn(len(classes))
		frameClass[id] = c
		ix.Add(id, vecOf(c))
	}
	if err := ix.Train(16, 5, 1); err != nil {
		log.Fatal(err)
	}
	// Query: "find frames most similar to this rainy scene".
	query := vecOf(0)
	start := time.Now()
	res, err := ix.Search(query, 5, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest scenes to a 'rain' query (IVF, %v):\n", time.Since(start).Round(time.Microsecond))
	for _, r := range res {
		fmt.Printf("  frame %4d  class=%s  dist=%.1f\n", r.ID, classes[frameClass[r.ID]], r.Dist)
	}
	// Incremental ingestion continues after training; rebuilding handles
	// churn (the paper's "(re)building" challenge).
	ix.Add(999999, vecOf(2))
	if err := ix.Rebuild(3, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index rebuilt over %d live vectors\n\n", ix.Len())

	// ------ 3. Fleet positions --------------------------------------
	grid := spatial.NewIndex(250) // 250m cells
	for car := int64(0); car < 500; car++ {
		grid.Insert(car, rng.Float64()*10000, rng.Float64()*10000)
	}
	nearby := grid.Radius(5000, 5000, 500)
	fmt.Printf("cars within 500m of the incident at (5000,5000): %d\n", len(nearby))
	closest := grid.Nearest(5000, 5000, 3)
	fmt.Printf("three closest responders: %v %v %v\n", closest[0].ID, closest[1].ID, closest[2].ID)
}
