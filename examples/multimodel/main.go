// Multi-model example: the paper's Example 1 (§II-B) end to end. One SQL
// statement combines:
//   - a time-series window (cars seen speeding in the last 30 minutes),
//   - a Gremlin graph traversal (persons with > 3 recent incoming calls),
//   - a relational mapping table (car registrations),
//
// joined by a correlated scalar subquery — the multi-model database's
// "integrated query processing across models".
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

func main() {
	now := time.Now().UTC()
	db, err := core.Open(core.Options{DataNodes: 2, Clock: func() time.Time { return now }})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// --- Time-series engine: highway speed sensors ---------------------
	ts := db.TimeSeries()
	ts.Append("high_speed", now.Add(-5*time.Minute), 132, map[string]string{"carid": "car1", "juncid": "j1"})
	ts.Append("high_speed", now.Add(-8*time.Minute), 140, map[string]string{"carid": "car1", "juncid": "j3"})
	ts.Append("high_speed", now.Add(-10*time.Minute), 125, map[string]string{"carid": "car2", "juncid": "j2"})
	ts.Append("high_speed", now.Add(-2*time.Hour), 150, map[string]string{"carid": "car9", "juncid": "j1"})
	if err := db.MultiModel().ExposeSeries("high_speed_view", "high_speed", 24*time.Hour, "carid", "juncid"); err != nil {
		log.Fatal(err)
	}

	// --- Graph engine: call graph of persons ---------------------------
	g := db.Graph()
	suspect := g.AddVertex("person", map[string]types.Datum{
		"cid": types.NewInt(11111), "phone": types.NewString("555-0100"),
	})
	clean := g.AddVertex("person", map[string]types.Datum{
		"cid": types.NewInt(22222), "phone": types.NewString("555-0101"),
	})
	for i := 0; i < 4; i++ {
		caller := g.AddVertex("person", map[string]types.Datum{"cid": types.NewInt(int64(30000 + i))})
		g.AddEdge(caller, suspect, "call", map[string]types.Datum{"ts": types.NewInt(int64(20180610 + i))})
	}
	one := g.AddVertex("person", map[string]types.Datum{"cid": types.NewInt(40000)})
	g.AddEdge(one, clean, "call", map[string]types.Datum{"ts": types.NewInt(20180615)})

	// --- Relational: car registration mapping --------------------------
	db.MustExec("CREATE TABLE car2cid (carid TEXT, cid BIGINT) DISTRIBUTE BY REPLICATION")
	db.MustExec("INSERT INTO car2cid VALUES ('car1', 11111), ('car2', 22222), ('car9', 99999)")

	// --- The unified query (Example 1) ----------------------------------
	res := db.MustExec(`
		with cars (carid) as (
		    select distinct carid from gtimeseries(
		        select ts, value, carid, juncid from high_speed_view
		        where now() - ts < INTERVAL '30 minutes') AS g),
		 suspects (cid) as (
		    select cid from ggraph('g.V().hasLabel(person).where(inE(call).has(ts, gt(20180601)).count().gt(3)).values(cid)') AS gg)
		select s.cid, c.carid
		from suspects s, cars c
		where s.cid = (select cid from car2cid as cc where cc.carid = c.carid)`)

	fmt.Println("suspects driving cars seen speeding in the last 30 minutes:")
	for _, r := range res.Rows {
		fmt.Printf("  cid=%v car=%v\n", r[0], r[1])
	}

	// Bonus: every engine's data is also visible relationally.
	if err := db.MultiModel().ExposeGraphTables("g"); err != nil {
		log.Fatal(err)
	}
	counts := db.MustExec("SELECT count(*) FROM g_edges")
	fmt.Printf("\nunified storage view: g_edges has %v rows (graph exposed as tables)\n", counts.Rows[0][0])
}
