// HTAP example (paper §II-A): a TPC-C-like OLTP workload and analytical
// queries run concurrently on one FI-MPPDB cluster. GTM-lite keeps the
// single-shard OLTP transactions off the GTM while the OLAP reports are
// served by columnar analytical replicas (internal/htap) fed from the
// commit log under a freshness bound — OLTP never shares a scan path
// with the reports.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/htap"
	"repro/internal/tpcc"
)

func main() {
	c, err := cluster.New(cluster.Config{DataNodes: 4, Mode: cluster.ModeGTMLite})
	if err != nil {
		log.Fatal(err)
	}
	cfg := tpcc.DefaultConfig(4, 0.9) // 90% single-shard mix
	if err := tpcc.Load(c, cfg); err != nil {
		log.Fatal(err)
	}
	gtmBase := c.GTMStats().Total()

	// Columnar analytical replicas: seeded under a barrier, then fed from
	// the commit-log tap. Reports tolerate up to 256 records of apply lag;
	// beyond that they block until the replicas catch up.
	m, err := htap.Enable(c, htap.Config{MaxLagRecords: 256, Policy: htap.PolicyBlock})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// OLTP side: two drivers hammering NewOrder/Payment.
	var wg sync.WaitGroup
	var oltp tpcc.Stats
	var mu sync.Mutex
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := tpcc.NewDriver(c, cfg, int64(w))
			if err := d.Run(150); err != nil {
				log.Println("driver:", err)
			}
			mu.Lock()
			oltp.Committed += d.Stats.Committed
			oltp.MultiShard += d.Stats.MultiShard
			oltp.Aborted += d.Stats.Aborted
			mu.Unlock()
		}(w)
	}

	// OLAP side: real-time operational reporting over the same data, while
	// the OLTP drivers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := c.NewSession()
		for i := 0; i < 10; i++ {
			time.Sleep(20 * time.Millisecond) // pace reports so OLTP interleaves
			res, err := s.Exec(`SELECT o.o_d_id, count(*) AS orders, sum(ol.ol_qty) AS units
			                    FROM orders o JOIN order_line ol
			                      ON o.o_w_id = ol.ol_w_id AND o.o_id = ol.ol_o_id
			                    GROUP BY o.o_d_id ORDER BY orders DESC LIMIT 3`)
			if err != nil {
				log.Println("olap:", err)
				continue
			}
			fmt.Printf("report %2d: top districts by live order volume: ", i)
			for _, r := range res.Rows {
				fmt.Printf("d%v(%v orders) ", r[0], r[1])
			}
			fmt.Println()
		}
	}()
	wg.Wait()

	fmt.Printf("\nOLTP: %d committed, %d multi-shard, %d aborted\n",
		oltp.Committed, oltp.MultiShard, oltp.Aborted)
	fmt.Printf("GTM requests during the mixed run: %d\n", c.GTMStats().Total()-gtmBase)
	st := m.Status()
	fmt.Printf("HTAP: %d reports offloaded to columnar replicas, %d degraded, %d records applied (max lag %d)\n",
		st.QueriesOffloaded, st.QueriesDegraded, st.RecordsApplied, st.MaxLagRecords)
	if err := tpcc.CheckInvariants(c, cfg); err != nil {
		log.Fatal("invariants violated: ", err)
	}
	fmt.Println("consistency invariants: OK (money conserved under HTAP)")
}
